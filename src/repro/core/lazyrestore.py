"""Serve-while-restoring: lazy, prioritized shared memory restore.

The blocking restore (Figure 7) keeps the leaf unavailable while every
block is copied out of shared memory — seconds per leaf, and at scale
the dominant user-visible cost of a rolling upgrade.  This module is the
"single-pass, incremental restore on demand" idea (*Instant restore
after a media failure*, PAPERS.md) transplanted onto the shm tier:

1. **Publish a block directory immediately.**  Attach the segments,
   validate the envelopes, and read only each block's packed header
   (offset, size, row count, min/max time, column names) — no payload is
   copied.  The leaf starts serving as soon as the directory is up.
2. **Fault in on demand.**  ``execute_on_leaf`` asks the restorer for
   the blocks a query's table and time range touch; each fault-in is a
   decode + verify + adopt into the live :class:`LeafMap`, charged to
   the :class:`MemoryTracker` and bounded by the machine-wide
   :class:`FootprintBudget` exactly like a blocking restore's copy
   window.
3. **Sweep the remainder by heat.**  A background thread (owned by the
   leaf server) calls :meth:`LazyRestore.sweep_one` until nothing is
   pending, hottest tables first — heat is the decoded-column cache's
   per-column lookup counters, which deliberately survive the restart's
   cache clear.

Crash safety is the blocking protocol's, unchanged: the valid bit goes
down *before* the directory is published, so a process that dies with
blocks still pending leaves invalid shm behind and the next boot walks
the disk ladder.  Any fault mid-fault-in routes the whole leaf down the
same ladder with tracker balances intact — adopted blocks leave the heap
region, surviving segments leave the shm region — while rows added
*during* the serving window are carried across the fallback.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator

from repro.columnstore.leafmap import LeafMap
from repro.columnstore.rowblock import RowBlock
from repro.core.states import (
    LeafRestoreMachine,
    LeafRestoreState,
    TableRestoreMachine,
    TableRestoreState,
)
from repro.errors import CorruptionError, LayoutVersionError, RecoveryError
from repro.shm.layout import read_block_headers
from repro.shm.metadata import LeafMetadata
from repro.shm.segment import ShmSegment

if TYPE_CHECKING:
    from repro.core.engine import RestartEngine, RestartReport


@dataclass(frozen=True)
class BlockDescriptor:
    """One sealed block the directory knows about but may not hold yet."""

    table: str
    index: int  # position in the segment's block order
    offset: int
    size: int  # packed bytes inside the segment
    row_count: int
    min_time: int
    max_time: int
    columns: tuple[str, ...]

    def overlaps(self, start: int | None, end: int | None) -> bool:
        if start is not None and self.max_time < start:
            return False
        if end is not None and self.min_time >= end:
            return False
        return True


@dataclass(frozen=True)
class RestoreProgress:
    """A consistent snapshot of how far a lazy restore has come."""

    bytes_total: int
    bytes_restored: int
    blocks_total: int
    blocks_restored: int
    queries_served: int
    bytes_restored_at_first_query: int | None
    done: bool
    fell_back_to_disk: bool

    @property
    def fraction_restored(self) -> float:
        if self.bytes_total <= 0:
            return 1.0
        return self.bytes_restored / self.bytes_total


class _TableState:
    """Per-table bookkeeping: the directory slice plus adoption slots."""

    def __init__(self, record, segment, view, extents) -> None:
        self.record = record
        self.segment: ShmSegment = segment
        self.view = view  # memoryview over the segment's used bytes
        self.machine = TableRestoreMachine()
        self.machine.transition(TableRestoreState.MEMORY_RECOVERY)
        self.pending: dict[int, BlockDescriptor] = {}
        self.slots: list[RowBlock | None] = [None] * len(extents)
        #: Directory indexes gone for good (expired while pending, or
        #: adopted and then expired) — never faulted, never reinstalled.
        self.dropped: set[int] = set()
        #: Uids this restorer last installed into the table; an installed
        #: uid missing from the table means the block left (expiry).
        self.installed: set[int] = set()
        self.columns: set[str] = set()
        for extent in extents:
            self.columns.update(extent.columns)

    @property
    def complete(self) -> bool:
        return not self.pending

    def restored_blocks(self) -> list[RowBlock]:
        return [
            block
            for index, block in enumerate(self.slots)
            if block is not None and index not in self.dropped
        ]


class LazyRestore:
    """One leaf's in-progress serve-while-restoring restore.

    Create through :meth:`RestartEngine.begin_lazy_restore`.  All public
    methods are safe to call under the leaf server's lock; internal state
    is additionally guarded by ``self._lock`` so engine-level tests can
    drive a restorer without a leaf around it.
    """

    #: Where pending blocks fault in from; the leaf server picks its
    #: serving status off this (``repro.core.replicarestore`` says
    #: ``"replica"``).
    source = "shm"

    def __init__(
        self,
        engine: "RestartEngine",
        leafmap: LeafMap,
        preserve_shm: bool,
        on_disk_fallback: Callable[[], None] | None,
    ) -> None:
        self._engine = engine
        self._leafmap = leafmap
        self._preserve_shm = preserve_shm
        self._on_disk_fallback = on_disk_fallback
        self._lock = threading.RLock()
        self._machine = LeafRestoreMachine()
        self._meta: LeafMetadata | None = None
        self._tables: dict[str, _TableState] = {}
        self._order: list[str] = []  # publish order, the heat tie-break
        self._budget = engine.budget
        self._start = engine.clock.now()
        self._expire_cutoff: int | None = None
        self.done = False
        self.error: BaseException | None = None
        from repro.core.engine import RestartReport

        self.report: "RestartReport" = RestartReport(method=None, lazy=True)
        # Progress counters (all guarded by self._lock).
        self._bytes_total = 0
        self._bytes_restored = 0
        self._blocks_total = 0
        self._blocks_restored = 0
        self._queries_served = 0
        self._bytes_at_first_query: int | None = None

    # ------------------------------------------------------------------
    # Begin: attach, invalidate, publish the directory
    # ------------------------------------------------------------------

    @classmethod
    def begin(
        cls,
        engine: "RestartEngine",
        leafmap: LeafMap,
        memory_recovery_enabled: bool = True,
        preserve_shm: bool = False,
        on_disk_fallback: Callable[[], None] | None = None,
    ) -> "LazyRestore":
        """Start a lazy restore; returns a handle that may already be done.

        When shared memory is unusable (disabled, absent, invalid) the
        disk ladder runs *blocking* inside this call — serve-while-
        restoring only applies to the shm tier — and the returned handle
        is already ``done`` with the final report.
        """
        if len(leafmap):
            raise RecoveryError("restore requires an empty leaf map")
        leafmap.drop_column_cache()  # heat counters survive the clear
        self = cls(engine, leafmap, preserve_shm, on_disk_fallback)
        engine._fault("restore:start")
        meta: LeafMetadata | None = None
        use_memory = memory_recovery_enabled and engine.shm_state_exists()
        if use_memory:
            meta = LeafMetadata.attach(engine.namespace, engine.leaf_id)
            try:
                try:
                    valid = (
                        meta.valid
                        and meta.layout_version == engine.layout_version
                    )
                except (CorruptionError, LayoutVersionError):
                    valid = False
                if not valid:
                    engine._discard_shm_tracked(meta)
                    meta = None
                    use_memory = False
            except Exception:
                meta.close()
                raise
        if not use_memory:
            self._recover_blocking_disk()
            return self
        assert meta is not None
        with self._lock:
            self._meta = meta
            self._machine.transition(LeafRestoreState.MEMORY_RECOVERY)
            try:
                meta.set_valid(False)  # interrupted restores must go to disk
                engine._fault("restore:after_invalidate")
                self._publish_directory()
                engine._fault("restore:publish_directory")
            except Exception as exc:
                self._fallback(exc)
                return self
            self._machine.transition(LeafRestoreState.MEMORY_SERVING)
            leafmap.restorer = self
            if all(state.complete for state in self._tables.values()):
                self._finish_memory()
        return self

    def _publish_directory(self) -> None:
        """Attach every table segment and index its blocks by header.

        The expensive part of Figure 7 — decode and copy — is deferred;
        this only maps the segments and reads packed headers, so the
        leaf can start serving in directory-scan time.
        """
        with self._lock:
            engine = self._engine
            assert self._meta is not None
            records = self._meta.records
            # A fresh process's tracker has no "shm" region yet; charge the
            # segments the fault-ins are about to consume (same rule as the
            # blocking restore) so the footprint sums hold.  The charge
            # rides the directory attach below — one attach per segment,
            # not a separate probe pass.  A failure mid-loop leaves some
            # segments uncharged, which _discard_shm_tracked's min() guard
            # absorbs on the fallback.
            charge_shm = engine.tracker.in_region("shm") == 0
            for record in records:
                segment = ShmSegment.attach(record.segment_name)
                try:
                    if charge_shm:
                        engine.tracker.allocate(
                            "shm", segment.size, at=engine.clock.now()
                        )
                    view = segment.read_at(0, record.used_bytes)
                except Exception:
                    segment.close()
                    raise
                try:
                    table_name, extents = read_block_headers(view)
                except Exception:
                    view.release()
                    segment.close()
                    raise
                state = _TableState(record, segment, view, extents)
                for extent in extents:
                    desc = BlockDescriptor(
                        table=record.table_name,
                        index=len(state.pending),
                        offset=extent.offset,
                        size=extent.size,
                        row_count=extent.row_count,
                        min_time=extent.min_time,
                        max_time=extent.max_time,
                        columns=extent.columns,
                    )
                    state.pending[desc.index] = desc
                    self._bytes_total += desc.size
                    self._blocks_total += 1
                self._tables[record.table_name] = state
                self._order.append(record.table_name)
                table = self._leafmap.create_table(record.table_name)
                table.total_rows_ingested = record.rows_ingested
                table.total_rows_expired = record.rows_expired
                if state.complete:  # an empty table is restored by definition
                    state.machine.transition(TableRestoreState.ALIVE)
                    self.report.tables += 1
            self.report.bytes_total = self._bytes_total
            self.report.blocks_total = self._blocks_total

    # ------------------------------------------------------------------
    # Fault-in
    # ------------------------------------------------------------------

    def fault_in_query(
        self, table: str, start: int | None, end: int | None
    ) -> int:
        """Fault in the pending blocks a query's scan would touch.

        Called by ``execute_on_leaf`` (and the row oracle) before the
        block walk.  Blocks outside the query's time range stay pending
        — that is the whole point — so a dashboard query over the last
        few minutes answers after faulting a handful of recent blocks.
        Returns the number of blocks faulted in.
        """
        with self._lock:
            if self.done:
                return 0
            self._queries_served += 1
            self.report.queries_served_during_restore = self._queries_served
            faulted = 0
            state = self._tables.get(table)
            if state is not None:
                for index in sorted(state.pending):
                    if state.pending[index].overlaps(start, end):
                        try:
                            self._fault_block(state, index)
                        except Exception:
                            if self.done and self.error is None:
                                # The fault routed this leaf down the
                                # disk ladder and the ladder succeeded:
                                # the data is now fully resident, so the
                                # query proceeds against it.
                                return faulted
                            raise
                        faulted += 1
                self._reconcile(state)
                self._maybe_finish()
            if self._bytes_at_first_query is None:
                self._bytes_at_first_query = self._bytes_restored
                self.report.bytes_restored_at_first_query = (
                    self._bytes_restored
                )
            return faulted

    def sweep_one(self) -> bool:
        """Fault in one pending block, hottest table first.

        Returns False once nothing is pending (the restore is finished,
        or it fell back to disk).  Heat is read live from the decoded-
        column cache on every call, so the sweep re-prioritizes as query
        traffic shifts; ties (and a cold cache) fall back to publish
        order, which matches the blocking restore's table order.
        """
        with self._lock:
            if self.done:
                return False
            state = self._hottest_pending()
            if state is None:
                self._maybe_finish()
                return False
            index = min(state.pending)  # oldest block first within a table
            try:
                self._fault_block(state, index)
            except Exception:
                if self.done and self.error is None:
                    return False  # fell back to disk; nothing left to sweep
                raise
            self._reconcile(state)
            self._maybe_finish()
            return True

    def drain(self) -> None:
        """Fault in everything still pending (a blocking finish)."""
        while self.sweep_one():
            pass

    def _hottest_pending(self) -> _TableState | None:
        cache = self._leafmap.column_cache
        heat = cache.column_heat() if cache is not None else {}
        best: _TableState | None = None
        best_key: tuple[int, int] | None = None
        for position, name in enumerate(self._order):
            state = self._tables[name]
            if state.complete:
                continue
            score = sum(heat.get(column, 0) for column in state.columns)
            key = (-score, position)
            if best_key is None or key < best_key:
                best, best_key = state, key
        return best

    def _fault_block(self, state: _TableState, index: int) -> None:
        """Decode, verify, and adopt one block (lock held).

        The block's copy window — segment bytes and fresh heap copy
        coexisting — is reserved against the machine-wide budget for the
        duration of the decode, the same invariant the blocking restore
        holds per table.  Any failure routes the leaf down the disk
        ladder via :meth:`_fallback` and re-raises.
        """
        desc = state.pending[index]
        engine = self._engine
        held = 0
        try:
            engine._fault("restore:fault_block")
            if self._budget is not None:
                self._budget.acquire(desc.size)
                held = desc.size
            try:
                block = RowBlock.unpack(
                    state.view[desc.offset : desc.offset + desc.size],
                    copy=True,
                )
                block.verify()
            finally:
                if self._budget is not None and held:
                    self._budget.release(held)
        except Exception as exc:
            self._fallback(exc)
            raise
        engine._track_heap_alloc(block.nbytes)
        del state.pending[index]
        state.slots[index] = block
        self._bytes_restored += desc.size
        self._blocks_restored += 1
        self.report.row_blocks += 1
        self.report.rbc_copies += len(block.schema)
        self.report.bytes_copied += block.nbytes
        self.report.rows += block.row_count
        if state.complete:
            state.machine.transition(TableRestoreState.ALIVE)
            self.report.tables += 1

    def _reconcile(self, state: _TableState) -> None:
        """Reinstall the restored prefix into the live table (lock held).

        Keeps the blocking restore's block order — directory order first,
        then blocks sealed from rows added during the serving window —
        so aggregate floats merge in the same order as a blocking
        restore and the results stay digest-identical.  Adopted blocks
        that have since left the table (expiry, size limits) are
        detected here and never resurrected.
        """
        table = self._leafmap.get_table(state.record.table_name)
        present = {block.uid for block in table.blocks}
        for index, block in enumerate(state.slots):
            if block is None or index in state.dropped:
                continue
            if block.uid in state.installed and block.uid not in present:
                state.dropped.add(index)
                state.slots[index] = None
        restored = state.restored_blocks()
        table.install_restored_blocks(restored)
        state.installed = {block.uid for block in restored}

    def _maybe_finish(self) -> None:
        if not self.done and all(
            state.complete for state in self._tables.values()
        ):
            self._finish_memory()

    # ------------------------------------------------------------------
    # Expiry during the serving window
    # ------------------------------------------------------------------

    def expire_before(self, cutoff_time: int) -> int:
        """Drop pending blocks entirely older than ``cutoff_time``.

        The adopted half of each table expires through the normal
        ``Table.expire_before``; this handles the not-yet-faulted half
        (their rows count as expired without ever touching the heap) and
        remembers the cutoff so a later disk fallback re-applies it to
        replayed data.  Returns rows dropped from pending blocks.
        """
        with self._lock:
            if self.done:
                return 0
            if self._expire_cutoff is None or cutoff_time > self._expire_cutoff:
                self._expire_cutoff = cutoff_time
            dropped_rows = 0
            for state in self._tables.values():
                expired = [
                    index
                    for index, desc in state.pending.items()
                    if desc.max_time < cutoff_time
                ]
                if expired:
                    table = self._leafmap.get_table(state.record.table_name)
                    for index in expired:
                        desc = state.pending.pop(index)
                        state.dropped.add(index)
                        self._bytes_total -= desc.size
                        self._blocks_total -= 1
                        dropped_rows += desc.row_count
                        table.total_rows_expired += desc.row_count
                    self.report.bytes_total = self._bytes_total
                    self.report.blocks_total = self._blocks_total
                    if state.complete:
                        state.machine.transition(TableRestoreState.ALIVE)
                        self.report.tables += 1
                self._reconcile(state)
            self._maybe_finish()
            return dropped_rows

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def iter_pending(
        self, table: str | None = None
    ) -> Iterator[BlockDescriptor]:
        """Yield (a snapshot of) the descriptors not yet faulted in."""
        with self._lock:
            names = [table] if table is not None else list(self._order)
            snapshot = [
                state.pending[index]
                for name in names
                if (state := self._tables.get(name)) is not None
                for index in sorted(state.pending)
            ]
        return iter(snapshot)

    def progress(self) -> RestoreProgress:
        with self._lock:
            return RestoreProgress(
                bytes_total=self._bytes_total,
                bytes_restored=self._bytes_restored,
                blocks_total=self._blocks_total,
                blocks_restored=self._blocks_restored,
                queries_served=self._queries_served,
                bytes_restored_at_first_query=self._bytes_at_first_query,
                done=self.done,
                fell_back_to_disk=self.report.fell_back_to_disk,
            )

    # ------------------------------------------------------------------
    # Completion, fallback, abandonment
    # ------------------------------------------------------------------

    def _close_segments(self) -> None:
        for state in self._tables.values():
            if state.view is not None:
                state.view.release()
                state.view = None
            if state.segment is not None:
                state.segment.close()
                state.segment = None

    def _finish_memory(self) -> None:
        """Every block is in: consume (or re-arm) the shm state (lock held)."""
        engine = self._engine
        for state in self._tables.values():
            state.view.release()
            state.view = None
            if self._preserve_shm:
                state.segment.close()
            else:
                engine.tracker.free(
                    "shm", state.segment.size, at=engine.clock.now()
                )
                state.segment.unlink()
            state.segment = None
        assert self._meta is not None
        if self._preserve_shm:
            # Verified end to end: re-arm the state for the adopter.
            self._meta.set_valid(True)
            self._meta.close()
        else:
            self._meta.unlink()
        self._meta = None
        from repro.core.engine import RecoveryMethod

        self.report.method = RecoveryMethod.SHARED_MEMORY
        self._machine.transition(LeafRestoreState.ALIVE)
        engine._finish_report(self.report, self._machine, self._start)
        self._leafmap.restorer = None
        self.done = True

    def _recover_blocking_disk(self) -> None:
        """No usable shm: run the ordinary disk ladder, blocking."""
        with self._lock:
            engine = self._engine
            if self._on_disk_fallback is not None:
                self._on_disk_fallback()
            try:
                engine._recover_from_disk(
                    self._leafmap, self.report, self._machine
                )
            except Exception as exc:
                self.error = exc
                self.done = True
                raise
            self._machine.transition(LeafRestoreState.ALIVE)
            engine._finish_report(self.report, self._machine, self._start)
            self.done = True

    def _fallback(self, exc: BaseException) -> None:
        """Route the leaf down the disk ladder after a mid-restore fault.

        The crash-safety argument is the blocking restore's: the valid
        bit has been down since before the directory was published, so
        whatever this method manages to do, a *second* failure (or a
        kill) still leaves a state the next boot refuses to trust.
        Tracker balances are restored — adopted heap bytes freed,
        surviving segments discharged — and rows added during the
        serving window are carried across into the replayed tables.
        """
        from repro.core.engine import RestartReport

        engine = self._engine
        leafmap = self._leafmap
        with self._lock:
            if self.done:
                return
            # Partial-attempt accounting survives on the final report.
            attempt = self.report
            report = RestartReport(
                method=None,
                lazy=True,
                fell_back_to_disk=True,
                memory_attempt_tables=attempt.tables,
                memory_attempt_row_blocks=attempt.row_blocks,
                memory_attempt_bytes=attempt.bytes_copied,
                memory_attempt_rows=attempt.rows,
                failure_reason=f"{type(exc).__name__}: {exc}",
                bytes_total=self._bytes_total,
                queries_served_during_restore=self._queries_served,
                bytes_restored_at_first_query=self._bytes_at_first_query,
            )
            self.report = report
            # Pull adopted blocks back out of the live tables, keeping
            # the data that arrived during the serving window: blocks
            # sealed from new adds and the open write buffers stay.
            for state in self._tables.values():
                table_name = state.record.table_name
                if table_name not in leafmap:
                    continue
                table = leafmap.get_table(table_name)
                adopted_uids = {
                    block.uid for block in state.slots if block is not None
                }
                adopted_bytes = sum(
                    block.nbytes for block in state.slots if block is not None
                )
                tail = [
                    block
                    for block in table.blocks
                    if block.uid not in adopted_uids
                ]
                table.replace_blocks(tail)
                if adopted_bytes:
                    engine._track_heap_free(adopted_bytes)
                state.slots = [None] * len(state.slots)
                state.installed = set()
            self._close_segments()
            if self._meta is not None:
                engine._discard_shm_tracked(self._meta)
                self._meta = None
            leafmap.restorer = None
            if self._on_disk_fallback is not None:
                self._on_disk_fallback()
            # Replay into a scratch map, then graft the replayed blocks
            # *under* each live table's new data — the replayed rows are
            # strictly older, so directory order is preserved.
            scratch = LeafMap(clock=engine.clock)
            try:
                engine._recover_from_disk(scratch, report, self._machine)
            except Exception as ladder_exc:
                self.error = ladder_exc
                self.done = True
                raise
            for recovered in scratch:
                table = leafmap.get_or_create(recovered.name)
                table.install_restored_blocks(recovered.blocks)
                if self._expire_cutoff is not None:
                    table.expire_before(self._expire_cutoff)
            self._machine.transition(LeafRestoreState.ALIVE)
            engine._finish_report(report, self._machine, self._start)
            self.done = True

    def abandon(self) -> None:
        """Drop the mappings without consuming anything (crash path).

        The valid bit is already down, so the segments left behind are
        exactly what an interrupted blocking restore leaves: invalid shm
        the next boot discards before walking the disk ladder.
        """
        with self._lock:
            if self.done:
                return
            self._close_segments()
            if self._meta is not None:
                self._meta.close()
                self._meta = None
            self._leafmap.restorer = None
            self.done = True


__all__ = ["BlockDescriptor", "LazyRestore", "RestoreProgress"]
