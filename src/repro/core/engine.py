"""The restart engine: Figures 6 and 7 as executable code.

``backup_to_shm`` is the shutdown procedure of Figure 6::

    create shared memory segment for leaf metadata
    set valid bit to false
    for each table
        estimate size of table
        create table shared memory segment
        add table segment to the leaf metadata
        for each row block
            grow the table segment in size if needed
            for each row block column
                copy data from heap to the table segment
                delete row block column from heap
            delete row block from heap
        delete table from heap
    set valid bit to true

``restore`` is the restart procedure of Figure 7::

    if valid bit is false
        delete shared memory segments
        recover from disk
        return
    set valid bit to false
    for each table shared memory segment
        for each row block
            for each row block column
                allocate memory in heap
                copy data from table segment to heap
        truncate the table shared memory segment if needed
        delete the table shared memory segment
    delete the metadata shared memory segment

If the restore path is interrupted, the valid bit is already false, so
the *next* restart goes to disk — the crash-safety property of the
protocol.  Every heap free and shared memory allocation is reported to a
:class:`~repro.util.memtrack.MemoryTracker` so the Section 4.4 footprint
claim is checkable (experiment E8).

"Recover from disk" is itself a two-rung ladder (paper, Section 6): if
every backed-up table has a trusted shm-format snapshot — generation
matching the manifest watermark, CRC intact, layout version readable —
the engine bulk-unpacks the snapshots (DISK_SNAPSHOT_RECOVERY) instead
of replaying the legacy row format.  Any validity failure routes the
whole leaf down to legacy replay; a stale or torn snapshot can cost
time, never correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from repro.columnstore.leafmap import LeafMap
from repro.columnstore.rowblock import RowBlock
from repro.core.parallel import FootprintBudget
from repro.core.states import (
    LeafBackupMachine,
    LeafBackupState,
    LeafRestoreMachine,
    LeafRestoreState,
    TableBackupMachine,
    TableBackupState,
    TableRestoreMachine,
    TableRestoreState,
)
from repro.core.watchdog import CooperativeDeadline
from repro.disk.backup import DiskBackup
from repro.disk.recovery import iter_snapshot_tables, recover_leafmap
from repro.disk.replay import replay_leafmap
from repro.errors import (
    CorruptionError,
    LayoutVersionError,
    RecoveryError,
    ReproError,
    ShmError,
)
from repro.shm.layout import (
    SHM_LAYOUT_VERSION,
    TableSegmentWriter,
    iter_blocks_from_segment,
    table_segment_size,
)
from repro.shm.metadata import LeafMetadata, TableSegmentRecord
from repro.shm.segment import ShmSegment, segment_exists
from repro.util.clock import Clock, SystemClock
from repro.util.memtrack import MemoryTracker

#: Fault-injection hook points, called as ``fault_hook(point_name)``.
#: Tests raise from the hook to simulate crashes at protocol boundaries.
FAULT_POINTS = (
    "backup:start",
    "backup:table",
    "backup:before_valid",
    "restore:start",
    "restore:after_invalidate",
    "restore:in_window",
    "restore:table",
    "restore:snapshot_table",
    "restore:before_finish",
    # Serve-while-restoring boundaries (lazy restore only):
    "restore:publish_directory",
    "restore:fault_block",
    # Replica-rung protocol phases (wire restore only):
    "replica:handshake",
    "replica:stream",
    "replica:block",
    "replica:adopt",
)


class RecoveryMethod(Enum):
    """How a restore obtained its data."""

    SHARED_MEMORY = "shared_memory"
    REPLICA = "replica"
    DISK_SNAPSHOT = "disk_snapshot"
    DISK = "disk"


@dataclass
class RestartReport:
    """What one shutdown or restore did."""

    method: RecoveryMethod | None
    tables: int = 0
    row_blocks: int = 0
    rbc_copies: int = 0
    bytes_copied: int = 0
    rows: int = 0
    duration_seconds: float = 0.0
    segment_grows: int = 0
    fell_back_to_disk: bool = False
    fell_back_to_legacy: bool = False
    peak_tracked_bytes: int = 0
    leaf_states: list[str] = field(default_factory=list)
    #: Why the recovery ladder stepped down a rung (``None`` = no fall).
    failure_reason: str | None = None
    #: What a failed shared memory attempt managed before falling back —
    #: preserved so availability artifacts don't under-report work done.
    memory_attempt_tables: int = 0
    memory_attempt_row_blocks: int = 0
    memory_attempt_bytes: int = 0
    memory_attempt_rows: int = 0
    #: The replica rung was entered and died on a wire fault; the disk
    #: rungs finished the restore.  The attempt counters record how far
    #: the wire pull got before the fall.
    fell_back_from_replica: bool = False
    replica_attempt_row_blocks: int = 0
    replica_attempt_bytes: int = 0
    #: Serve-while-restoring: set on reports produced by a lazy restore.
    lazy: bool = False
    bytes_total: int = 0
    blocks_total: int = 0
    queries_served_during_restore: int = 0
    bytes_restored_at_first_query: int | None = None


def _exact_size(table_name: str, blocks: list) -> int:
    return table_segment_size(table_name, blocks)


class RestartEngine:
    """Shutdown-to-shared-memory and restore-from-shared-memory for one
    leaf server's data.

    Parameters
    ----------
    leaf_id:
        Identifies this leaf's fixed metadata location.
    namespace:
        Prefix for every segment name; lets independent clusters (and
        concurrent test runs) share /dev/shm without collisions.
    backup:
        The :class:`DiskBackup` used by disk recovery and by the
        PREPARE-state flush.  Optional: without it, a failed memory
        recovery raises instead of falling back.
    layout_version:
        The shared memory layout this build writes and reads.  A stored
        version that differs forces disk recovery (paper, Section 4.2).
    size_estimator:
        ``f(table_name, blocks) -> bytes`` used at segment-creation time.
        The default is exact; tests inject a lowballing estimator to
        exercise the "grow the table segment if needed" path.
    fault_hook:
        ``f(point_name)`` called at protocol boundaries; tests raise from
        it to simulate crashes.
    budget:
        Optional machine-wide :class:`~repro.core.parallel.FootprintBudget`.
        When set, the engine reserves each copy window (a table segment
        during backup, a table's heap rematerialization during restore)
        against it before starting the copy, so concurrent engines on
        one machine queue instead of stacking their in-flight bytes.
    disk_snapshot_tier:
        Whether disk recovery may take the shm-format snapshot fast path
        when every table's snapshot is trusted.  Disable to force legacy
        row-format replay (benchmark baselines, paranoia mode).
    replay_workers / replay_backend:
        How the legacy rung runs when it is reached: more than one
        worker fans the row-sealing work across a pool
        (:func:`~repro.disk.replay.replay_leafmap`, thread or process
        backend) with digests identical to the single-stream replay.
    replica_source:
        ``f() -> ReplicaFetchSession | None``, the REPLICA_RECOVERY
        rung's discovery hook (the cluster wires a
        :meth:`~repro.cluster.replication.ReplicaCatalog.session_source`
        here).  Called lazily at ladder time — including inside a forked
        restore worker — whenever shared memory is unusable; returning
        ``None`` (no replica alive) skips straight to the disk rungs.
    """

    def __init__(
        self,
        leaf_id: str,
        namespace: str = "scuba",
        backup: DiskBackup | None = None,
        layout_version: int = SHM_LAYOUT_VERSION,
        tracker: MemoryTracker | None = None,
        clock: Clock | None = None,
        size_estimator: Callable[[str, list], int] | None = None,
        fault_hook: Callable[[str], None] | None = None,
        budget: FootprintBudget | None = None,
        disk_snapshot_tier: bool = True,
        replay_workers: int = 1,
        replay_backend: str = "thread",
        replica_source: Callable[[], object] | None = None,
    ) -> None:
        if replay_workers < 1:
            raise ValueError("replay_workers must be positive")
        self.leaf_id = str(leaf_id)
        self.namespace = namespace
        self.backup = backup
        self.layout_version = layout_version
        self.disk_snapshot_tier = disk_snapshot_tier
        self.replay_workers = replay_workers
        self.replay_backend = replay_backend
        self.replica_source = replica_source
        self.tracker = tracker or MemoryTracker()
        self.clock = clock or SystemClock()
        self.budget = budget
        self._size_estimator = size_estimator or _exact_size
        self._fault = fault_hook or (lambda point: None)
        #: Heap bytes this engine has reported to the (possibly shared)
        #: tracker.  ``tracker.in_region("heap")`` is machine-wide when
        #: leaves share a tracker; the backup deficit seeding below must
        #: compare against *this leaf's* contribution only.
        self._engine_heap = 0
        self._reset_counters()

    def _track_heap_alloc(self, nbytes: int) -> None:
        self.tracker.allocate("heap", nbytes, at=self.clock.now())
        self._engine_heap += nbytes

    def _track_heap_free(self, nbytes: int) -> None:
        self.tracker.free("heap", nbytes, at=self.clock.now())
        self._engine_heap = max(0, self._engine_heap - nbytes)

    def forget_heap(self) -> None:
        """Drop this engine's heap charge from the (possibly shared)
        tracker without copying anything — the accounting counterpart of
        a worker process taking the heap down with it on exit."""
        if self._engine_heap:
            self.tracker.free("heap", self._engine_heap, at=self.clock.now())
            self._engine_heap = 0

    def _reset_counters(self) -> None:
        self._rbc_copies = 0
        self._bytes_copied = 0
        self._rows_copied = 0
        self._blocks_copied = 0
        self._block_rows: list[int] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def shm_state_exists(self) -> bool:
        """Whether this leaf's metadata segment currently exists."""
        return LeafMetadata.exists(self.namespace, self.leaf_id)

    def shm_state_valid(self) -> bool:
        """Whether shared memory recovery would be attempted."""
        if not self.shm_state_exists():
            return False
        meta = LeafMetadata.attach(self.namespace, self.leaf_id)
        try:
            return meta.valid and meta.layout_version == self.layout_version
        except (CorruptionError, LayoutVersionError):
            return False
        finally:
            meta.close()

    def discard_shm(self) -> bool:
        """Unlink any shared memory state this leaf left behind."""
        if not self.shm_state_exists():
            return False
        meta = LeafMetadata.attach(self.namespace, self.leaf_id)
        try:
            meta.unlink_all()
        except (CorruptionError, LayoutVersionError):
            # Unreadable metadata: drop the metadata segment itself; any
            # orphan table segments keep their namespaced names and are
            # cleaned by the next backup that reuses them.
            meta.unlink()
        return True

    def _segment_base_name(self, table_index: int) -> str:
        return f"{self.namespace}-leaf-{self.leaf_id}-t{table_index}"

    # ------------------------------------------------------------------
    # Shutdown (Figure 6)
    # ------------------------------------------------------------------

    def backup_to_shm(
        self,
        leafmap: LeafMap,
        deadline: CooperativeDeadline | None = None,
    ) -> RestartReport:
        """Copy every table to shared memory and set the valid bit.

        On success the leaf map is left empty (its heap data has been
        "deleted" table by table) and the report's method is
        ``SHARED_MEMORY``.  On any failure — including a
        :class:`~repro.errors.ShutdownTimeout` from the deadline — the
        valid bit stays false and the exception propagates; whatever
        segments were created are discarded by the next restore.
        """
        start = self.clock.now()
        leaf = LeafBackupMachine()
        leaf.transition(LeafBackupState.COPY_TO_SHM)
        report = RestartReport(method=RecoveryMethod.SHARED_MEMORY)
        self._reset_counters()
        self._fault("backup:start")
        # Drop cached decoded columns first: they are derived data the
        # shutdown never copies, and holding them through the copy loop
        # would inflate the footprint the Section 4.4 invariant bounds.
        leafmap.drop_column_cache()
        # Seal every write buffer up front (shutdown already rejects new
        # data) and make sure the tracker accounts for the heap bytes the
        # copy loop is about to free — callers that did not pre-seed the
        # tracker still get consistent footprint numbers.
        leafmap.seal_all()
        total_heap = sum(table.sealed_nbytes for table in leafmap)
        # Compare against this engine's own contribution, not the whole
        # region: with a machine-wide shared tracker the region also
        # holds the other leaves' bytes, and measuring the deficit
        # against it would let this leaf's data go uncharged.
        deficit = total_heap - self._engine_heap
        if deficit > 0:
            self._track_heap_alloc(deficit)
        if self.shm_state_exists():
            self.discard_shm()  # stale state from an unlinked predecessor
        meta = LeafMetadata.create(self.namespace, self.leaf_id, self.layout_version)
        records: list[TableSegmentRecord] = []
        try:
            # Table order must be deterministic so segment names are
            # reproducible across the shutdown/restore pair.
            for index, table_name in enumerate(list(leafmap.table_names)):
                table = leafmap.get_table(table_name)
                machine = TableBackupMachine()
                machine.transition(TableBackupState.PREPARE)
                # PREPARE: reject new work, finish in-flight work, flush
                # to disk.  In this single-threaded engine that reduces
                # to sealing the write buffer and syncing the backup.
                table.seal_buffer()
                if self.backup is not None:
                    self.backup.sync_table(table)
                machine.transition(TableBackupState.COPY_TO_SHM)
                record, grows = self._copy_table_out(table, index, deadline)
                records.append(record)
                meta.set_records(records)
                report.segment_grows += grows
                report.tables += 1
                leafmap.drop_table(table_name)
                machine.transition(TableBackupState.DONE)
                self._fault("backup:table")
            self._fault("backup:before_valid")
            meta.set_valid(True)
        finally:
            meta.close()
        leaf.transition(LeafBackupState.EXIT)
        report.leaf_states = [state.value for state in leaf.history]
        report.rbc_copies = self._rbc_copies
        report.bytes_copied = self._bytes_copied
        report.rows = self._rows_copied
        report.row_blocks = self._blocks_copied
        report.duration_seconds = self.clock.now() - start
        report.peak_tracked_bytes = self.tracker.peak_total
        return report

    def _copy_table_out(
        self,
        table,
        table_index: int,
        deadline: CooperativeDeadline | None,
    ) -> tuple[TableSegmentRecord, int]:
        """Copy one table into its segment; returns (record, grow count)."""
        blocks = table.take_blocks()
        self._block_rows = [block.row_count for block in blocks]
        estimate = max(64, self._size_estimator(table.name, blocks))
        grows = 0
        base = self._segment_base_name(table_index)
        # A previous backup of this leaf that was killed mid-copy can
        # leave an orphan segment that its (never-written) metadata
        # record does not reference; the name is ours, so reclaim it.
        if segment_exists(base):
            ShmSegment.attach(base).unlink()
        # This table's copy window — the span where segment and heap
        # coexist — is in flight against the machine-wide budget until
        # the copy loop has drained the heap side.
        held = 0
        if self.budget is not None:
            self.budget.acquire(estimate)
            held = estimate
        try:
            segment = ShmSegment.create(base, estimate)
            self.tracker.allocate("shm", segment.size, at=self.clock.now())
            writer = TableSegmentWriter(segment, table.name, blocks)
            while True:
                try:
                    events = writer.copy_events()
                    # copy_events validates capacity before the first write,
                    # so a too-small estimate fails here with nothing copied.
                    first_event = next(events, None)
                except ShmError:
                    # "grow the table segment in size if needed": POSIX
                    # segments cannot grow in place, so allocate a larger one
                    # and retire the small one.  Nothing was copied yet.
                    needed = table_segment_size(table.name, blocks)
                    self.tracker.free("shm", segment.size, at=self.clock.now())
                    segment.unlink()
                    grows += 1
                    if self.budget is not None:
                        # Swap the reservation: release before re-acquiring
                        # so an oversized regrow can use the whole-budget
                        # admission instead of deadlocking on itself.
                        self.budget.release(held)
                        held = 0
                        self.budget.acquire(needed)
                        held = needed
                    grown_name = f"{base}-g{grows}"
                    if segment_exists(grown_name):
                        ShmSegment.attach(grown_name).unlink()
                    segment = ShmSegment.create(grown_name, needed)
                    self.tracker.allocate("shm", segment.size, at=self.clock.now())
                    writer = TableSegmentWriter(segment, table.name, blocks)
                    continue
                break
            if first_event is not None:
                self._apply_copy_event(blocks, first_event, deadline)
            for event in events:
                self._apply_copy_event(blocks, event, deadline)
            record = TableSegmentRecord(
                table_name=table.name,
                segment_name=segment.name,
                used_bytes=writer.used_bytes,
                rows_ingested=table.total_rows_ingested,
                rows_expired=table.total_rows_expired,
            )
            segment.close()
            return record, grows
        finally:
            if self.budget is not None and held:
                self.budget.release(held)

    def _apply_copy_event(self, blocks, event, deadline) -> None:
        if deadline is not None:
            deadline.check()
        block = blocks[event.block_index]
        freed = block.release_column(event.column_name)
        self._track_heap_free(freed)
        self._rbc_copies += 1
        self._bytes_copied += event.nbytes
        if event.last_in_block:
            # "delete row block from heap"
            self._rows_copied += self._block_rows[event.block_index]
            self._blocks_copied += 1
            blocks[event.block_index] = None

    # ------------------------------------------------------------------
    # Restore (Figure 7)
    # ------------------------------------------------------------------

    def restore(
        self,
        leafmap: LeafMap,
        memory_recovery_enabled: bool = True,
        preserve_shm: bool = False,
        on_disk_fallback: Callable[[], None] | None = None,
    ) -> RestartReport:
        """Restore this leaf's data into an empty ``leafmap``.

        Attempts shared memory recovery when it is enabled and the valid
        bit is set; otherwise — or on any exception mid-copy — falls back
        to disk recovery, per Figure 5(b).

        ``on_disk_fallback`` is invoked at the fallback boundary, before
        any disk rung runs.  The leaf server hooks its status flip here:
        Figure 5 has the leaf *accepting* adds and queries during the
        slow disk rungs, so staying in the rejecting memory-recovery
        status for an entire legacy replay would turn a seconds-long
        outage into a minutes-long one.

        ``preserve_shm`` is the process-backend variant: the restore
        runs in a forked worker whose address space is about to vanish,
        so instead of consuming the segments it decodes and verifies
        every block into ``leafmap`` (paying the same copy cost), then
        sets the valid bit back to True and *keeps* the segments for the
        serving process to adopt.  The invalidate-first step still runs,
        so a worker killed mid-restore leaves the valid bit down and the
        next attempt walks the disk ladder — crash safety is identical.
        """
        if len(leafmap):
            raise RecoveryError("restore requires an empty leaf map")
        # A leaf restarting after a crash may hand over a fresh leaf map
        # that shares the previous incarnation's cache object; whatever
        # it still holds describes dead blocks.  Restores start cold.
        leafmap.drop_column_cache()
        start = self.clock.now()
        leaf = LeafRestoreMachine()
        report = RestartReport(method=None)
        self._fault("restore:start")
        meta: LeafMetadata | None = None
        use_memory = memory_recovery_enabled and self.shm_state_exists()
        if use_memory:
            meta = LeafMetadata.attach(self.namespace, self.leaf_id)
            try:
                try:
                    valid = (
                        meta.valid and meta.layout_version == self.layout_version
                    )
                except (CorruptionError, LayoutVersionError):
                    valid = False
                if not valid:
                    # "if valid bit is false: delete shared memory segments,
                    # recover from disk"
                    self._discard_shm_tracked(meta)
                    meta = None
                    use_memory = False
            except Exception:
                # The metadata mapping must not outlive an unexpected
                # failure here — shared memory is never reclaimed by
                # process exit.
                meta.close()
                raise
        if not use_memory:
            # Covers the race where the valid bit dropped between the
            # caller's shm_state_valid() check and this attach: the leaf
            # predicted a memory recovery but gets a disk one.
            if on_disk_fallback is not None:
                on_disk_fallback()
            self._recover_from_disk(leafmap, report, leaf)
            leaf.transition(LeafRestoreState.ALIVE)
            return self._finish_report(report, leaf, start)
        assert meta is not None
        leaf.transition(LeafRestoreState.MEMORY_RECOVERY)
        try:
            meta.set_valid(False)  # an interrupted restore must go to disk
            self._fault("restore:after_invalidate")
            self._restore_from_segments(
                meta, leafmap, report, preserve_shm=preserve_shm
            )
            self._fault("restore:before_finish")
            if preserve_shm:
                # Verified end to end: re-arm the state for the adopter.
                meta.set_valid(True)
                meta.close()
            else:
                meta.unlink()
            report.method = RecoveryMethod.SHARED_MEMORY
        except Exception as exc:
            # Figure 5(b): MEMORY RECOVERY --exception--> DISK RECOVERY.
            # Any failure mid-copy (corruption, truncated segment, even a
            # programming error in the decode path) must route to disk.
            # Both the surviving segments and the partially-restored heap
            # tables leave through the tracker, so the footprint numbers
            # (and the shared machine-wide regions) return to baseline.
            self._discard_shm_tracked(meta)
            self._drop_restored_tables(leafmap)
            # The disk rungs restart the per-method counters from zero,
            # but what the memory attempt did (and why it died) stays on
            # the final report.
            report = RestartReport(
                method=None,
                fell_back_to_disk=True,
                failure_reason=f"{type(exc).__name__}: {exc}",
                memory_attempt_tables=report.tables,
                memory_attempt_row_blocks=report.row_blocks,
                memory_attempt_bytes=report.bytes_copied,
                memory_attempt_rows=report.rows,
            )
            if on_disk_fallback is not None:
                on_disk_fallback()
            self._recover_from_disk(leafmap, report, leaf)
        leaf.transition(LeafRestoreState.ALIVE)
        return self._finish_report(report, leaf, start)

    def begin_lazy_restore(
        self,
        leafmap: LeafMap,
        memory_recovery_enabled: bool = True,
        preserve_shm: bool = False,
        on_disk_fallback: Callable[[], None] | None = None,
    ):
        """Start a serve-while-restoring restore; returns a
        :class:`~repro.core.lazyrestore.LazyRestore` handle.

        The handle publishes the block directory before returning, so
        the caller can begin serving immediately; blocks fault in as
        queries touch them and via the handle's ``sweep_one``.  When
        shared memory is unusable but a replica session opens, the
        directory comes from the replica's wire catalog instead and
        blocks fault in over the network
        (:class:`~repro.core.replicarestore.ReplicaRestore`).  With
        neither source the disk ladder runs blocking inside this call —
        which itself includes the blocking replica rung — and the handle
        comes back already done.
        """
        from repro.core.lazyrestore import LazyRestore

        if not (memory_recovery_enabled and self.shm_state_valid()):
            from repro.core.replicarestore import ReplicaRestore

            handle = ReplicaRestore.begin(
                self, leafmap, on_disk_fallback=on_disk_fallback
            )
            if handle is not None:
                return handle
        return LazyRestore.begin(
            self,
            leafmap,
            memory_recovery_enabled=memory_recovery_enabled,
            preserve_shm=preserve_shm,
            on_disk_fallback=on_disk_fallback,
        )

    def _discard_shm_tracked(self, meta: LeafMetadata) -> None:
        """Unlink a leaf's shm state *through the tracker*.

        The bare ``meta.unlink_all()`` frees the segments from the OS but
        leaves the "shm" region (possibly shared machine-wide) charged
        forever.  Here each table segment that still exists is freed from
        the region before unlinking; the min() guard covers engines whose
        tracker never charged these segments (fresh process, region empty).
        """
        try:
            records = meta.records
        except (CorruptionError, LayoutVersionError):
            meta.unlink()
            return
        now = self.clock.now()
        for record in records:
            if not segment_exists(record.segment_name):
                continue
            with ShmSegment.attach(record.segment_name) as segment:
                nbytes = segment.size
                segment.unlink()
            tracked = min(nbytes, self.tracker.in_region("shm"))
            if tracked:
                self.tracker.free("shm", tracked, at=now)
        meta.unlink()

    def _drop_restored_tables(self, leafmap: LeafMap) -> None:
        """Drop partially-restored tables, returning their heap bytes."""
        for table_name in list(leafmap.table_names):
            table = leafmap.get_table(table_name)
            nbytes = table.sealed_nbytes
            if nbytes:
                self._track_heap_free(nbytes)
            leafmap.drop_table(table_name)

    def _restore_from_segments(
        self,
        meta: LeafMetadata,
        leafmap: LeafMap,
        report: RestartReport,
        preserve_shm: bool = False,
    ) -> None:
        records = meta.records
        # A fresh process's tracker has no "shm" region yet; charge the
        # segments it is about to consume so the footprint sums hold.
        if self.tracker.in_region("shm") == 0:
            for record in records:
                with ShmSegment.attach(record.segment_name) as segment:
                    self.tracker.allocate(
                        "shm", segment.size, at=self.clock.now()
                    )
        for record in records:
            machine = TableRestoreMachine()
            machine.transition(TableRestoreState.MEMORY_RECOVERY)
            # The restore copy window: this table exists twice (segment +
            # fresh heap copies) until the segment is unlinked.  Reserve
            # that double-presence against the machine-wide budget.
            if self.budget is not None:
                self.budget.acquire(record.used_bytes)
            segment: ShmSegment | None = None
            pending = 0  # heap bytes tracked but not yet installed in a table
            try:
                # Inside the copy window: the reservation above is held.
                self._fault("restore:in_window")
                segment = ShmSegment.attach(record.segment_name)
                table = leafmap.create_table(record.table_name)
                blocks = []
                view = segment.read_at(0, record.used_bytes)
                try:
                    for _, block in iter_blocks_from_segment(view):
                        block.verify()
                        # "allocate memory in heap; copy data from table
                        # segment to heap" — unpack() made fresh heap
                        # copies, one bulk bytes() per column.
                        self._track_heap_alloc(block.nbytes)
                        pending += block.nbytes
                        blocks.append(block)
                        report.row_blocks += 1
                        report.rbc_copies += len(block.schema)
                        report.bytes_copied += block.nbytes
                        report.rows += block.row_count
                finally:
                    # Release the view before unlinking: an exported pointer
                    # into the mmap would make close() fail.
                    view.release()
                table.replace_blocks(blocks)
                # Installed blocks are now the table's responsibility; the
                # fallback cleanup frees them via the table's sealed bytes.
                pending = 0
                table.total_rows_ingested = record.rows_ingested
                table.total_rows_expired = record.rows_expired
                report.tables += 1
                if preserve_shm:
                    # The adopter consumes the segment; only drop the map.
                    segment.close()
                else:
                    # "delete the table shared memory segment"
                    self.tracker.free("shm", segment.size, at=self.clock.now())
                    segment.unlink()
            except Exception:
                # Un-track blocks that were decoded but never installed,
                # and drop the local attach so the mapping is not leaked
                # to the fallback path.
                if pending:
                    self._track_heap_free(pending)
                if segment is not None:
                    segment.close()
                raise
            finally:
                if self.budget is not None:
                    self.budget.release(record.used_bytes)
            machine.transition(TableRestoreState.ALIVE)
            self._fault("restore:table")

    def _recover_from_disk(
        self,
        leafmap: LeafMap,
        report: RestartReport,
        leaf: LeafRestoreMachine,
        try_replica: bool = True,
    ) -> None:
        """The lower recovery ladder: replica, snapshot tier, then legacy.

        Owns the leaf-machine transitions for these rungs so the report's
        state history records exactly which tiers ran.  ``try_replica``
        is cleared by callers that already burned a replica session (a
        serve-while-restoring wire fault must not retry the wire).
        """
        if try_replica and self._try_replica_restore(leafmap, report, leaf):
            return
        if self.backup is None:
            raise RecoveryError(
                f"leaf {self.leaf_id}: no valid shared memory state and no "
                "disk backup configured"
            )
        if self._snapshot_tier_usable():
            leaf.transition(LeafRestoreState.DISK_SNAPSHOT_RECOVERY)
            try:
                self._restore_from_snapshots(leafmap, report)
                report.method = RecoveryMethod.DISK_SNAPSHOT
                return
            except Exception as exc:
                # Stale generation, torn file, layout mismatch, or any
                # decode failure: the whole leaf routes down to legacy
                # replay.  Whatever the snapshot tier installed leaves
                # through the tracker first, so a half-trusted snapshot
                # can never co-mingle with replayed state.
                self._drop_restored_tables(leafmap)
                if report.failure_reason is None:
                    report.failure_reason = f"{type(exc).__name__}: {exc}"
                report.tables = 0
                report.row_blocks = 0
                report.rbc_copies = 0
                report.bytes_copied = 0
                report.rows = 0
                report.fell_back_to_legacy = True
        leaf.transition(LeafRestoreState.DISK_RECOVERY)
        if self.replay_workers > 1:
            report.rows = replay_leafmap(
                self.backup,
                leafmap,
                workers=self.replay_workers,
                backend=self.replay_backend,
                budget=self.budget,
                clock=self.clock,
            )
        else:
            report.rows = recover_leafmap(self.backup, leafmap)
        report.tables = len(leafmap)
        report.row_blocks = sum(table.block_count for table in leafmap)
        for table in leafmap:
            self._track_heap_alloc(table.nbytes)
        report.method = RecoveryMethod.DISK

    def _try_replica_restore(
        self, leafmap: LeafMap, report: RestartReport, leaf: LeafRestoreMachine
    ) -> bool:
        """The REPLICA_RECOVERY rung; True when the wire pull finished.

        Any failure — unreachable replica, dropped connection, torn
        frame, decode error — is all-or-nothing: every table this rung
        installed leaves through the tracker, the attempt counters move
        to the report's ``replica_attempt_*`` fields, and the caller
        proceeds to the disk rungs with balances intact.
        """
        source = self.replica_source
        if source is None:
            return False
        session = None
        try:
            self._fault("replica:handshake")
            session = source()
            if session is None:
                return False
            session.fault = self._fault
            leaf.transition(LeafRestoreState.REPLICA_RECOVERY)
            self._restore_from_replica(session, leafmap, report)
            report.method = RecoveryMethod.REPLICA
            return True
        except Exception as exc:
            self._drop_restored_tables(leafmap)
            if report.failure_reason is None:
                report.failure_reason = f"{type(exc).__name__}: {exc}"
            report.replica_attempt_row_blocks = report.row_blocks
            report.replica_attempt_bytes = report.bytes_copied
            report.tables = 0
            report.row_blocks = 0
            report.rbc_copies = 0
            report.bytes_copied = 0
            report.rows = 0
            report.fell_back_from_replica = True
            return False
        finally:
            if session is not None:
                session.close()

    def _restore_from_replica(
        self, session, leafmap: LeafMap, report: RestartReport
    ) -> None:
        """Pipelined, heat-ordered pull of every sealed block.

        ``session.streams`` fetch threads each run fetch → unpack →
        verify (the CRC and decode work release the GIL, so the streams
        genuinely overlap); tables then install all-or-nothing in
        catalog order once every block is home.  Hot tables — by the
        decoded-column cache's heat counters — go first, so a fault that
        kills the session late still pulled the data queries want most.
        """
        from concurrent.futures import FIRST_EXCEPTION, ThreadPoolExecutor, wait

        cache = leafmap.column_cache
        heat = cache.column_heat() if cache is not None else {}

        def table_heat(wire_table) -> int:
            names = {
                name for block in wire_table.blocks for name in block.columns
            }
            return sum(heat.get(name, 0) for name in names)

        order = sorted(
            range(len(session.tables)),
            key=lambda i: (-table_heat(session.tables[i]), i),
        )
        descriptors = [
            desc for i in order for desc in session.tables[i].blocks
        ]

        slots: dict[str, list] = {
            t.name: [None] * len(t.blocks) for t in session.tables
        }

        def on_block(table: str, index: int, payload: bytes) -> None:
            # The in-flight window: wire bytes and the decoded block
            # coexist until the copy below lands in a table.
            if self.budget is not None:
                self.budget.acquire(len(payload))
            try:
                block = RowBlock.unpack(payload, copy=True)
                block.verify()
            finally:
                if self.budget is not None:
                    self.budget.release(len(payload))
            slots[table][index] = block

        # Strided slices keep the heat order: every stream starts on the
        # hottest blocks of its share, and each stream amortizes the
        # round trip over its whole run via windowed pipelining.
        streams = max(1, session.streams)
        shares = [
            [(d.table, d.index) for d in descriptors[i::streams]]
            for i in range(streams)
        ]
        executor = ThreadPoolExecutor(
            max_workers=streams, thread_name_prefix="replica-fetch"
        )
        try:
            futures = [
                executor.submit(session.fetch_many, share, on_block)
                for share in shares
                if share
            ]
            done, _ = wait(futures, return_when=FIRST_EXCEPTION)
            failed = next(
                (f for f in done if f.exception() is not None), None
            )
            if failed is not None:
                raise failed.exception()
        finally:
            executor.shutdown(wait=True, cancel_futures=True)
        for wire_table in session.tables:
            machine = TableRestoreMachine()
            machine.transition(TableRestoreState.REPLICA_RECOVERY)
            table = leafmap.create_table(wire_table.name)
            table.replace_blocks(slots[wire_table.name])
            table.total_rows_ingested = wire_table.rows_ingested
            table.total_rows_expired = wire_table.rows_expired
            self._track_heap_alloc(table.sealed_nbytes)
            report.tables += 1
            report.row_blocks += table.block_count
            report.rbc_copies += sum(
                len(block.schema) for block in table.blocks
            )
            report.bytes_copied += table.sealed_nbytes
            report.rows += table.row_count
            machine.transition(TableRestoreState.ALIVE)
            self._fault("replica:adopt")

    def _snapshot_tier_usable(self) -> bool:
        """Pre-check before entering the snapshot tier at all.

        The manifest must vouch for every table's snapshot, and this
        build's declared layout version must be the one snapshot bodies
        are written in — a build whose shm layout diverged must not
        consume shm-format bytes from disk any more than from /dev/shm.
        """
        return (
            self.disk_snapshot_tier
            and self.layout_version == SHM_LAYOUT_VERSION
            and self.backup is not None
            and self.backup.snapshots_ready()
        )

    def _restore_from_snapshots(
        self, leafmap: LeafMap, report: RestartReport
    ) -> None:
        """DISK_SNAPSHOT_RECOVERY: bulk-unpack every table's snapshot."""
        assert self.backup is not None
        for table_name, snap in iter_snapshot_tables(self.backup):
            machine = TableRestoreMachine()
            machine.transition(TableRestoreState.DISK_SNAPSHOT_RECOVERY)
            table = leafmap.create_table(table_name)
            table.replace_blocks(snap.blocks)
            table.total_rows_ingested = snap.rows_ingested
            table.total_rows_expired = snap.rows_expired
            # "Any needed deletions are made after recovery" — expiry
            # recorded after the snapshot was taken is re-applied here,
            # before the blocks are charged to the heap.  A cutoff the
            # snapshot already reflects stays un-applied, else rows that
            # were buffered at record time would over-expire.
            cutoff = self.backup.pending_expire_cutoff(table_name)
            if cutoff:
                table.expire_before(cutoff)
            self._track_heap_alloc(table.sealed_nbytes)
            report.tables += 1
            report.row_blocks += table.block_count
            report.rbc_copies += sum(len(block.schema) for block in table.blocks)
            report.bytes_copied += table.sealed_nbytes
            report.rows += table.row_count
            machine.transition(TableRestoreState.ALIVE)
            self._fault("restore:snapshot_table")

    def _finish_report(
        self, report: RestartReport, leaf: LeafRestoreMachine, start: float
    ) -> RestartReport:
        report.duration_seconds = self.clock.now() - start
        report.peak_tracked_bytes = self.tracker.peak_total
        report.leaf_states = [state.value for state in leaf.history]
        return report
