"""Rollover progress monitoring.

"We therefore monitor the rollover process closely, to make sure it is
making progress" (paper, §4.5) — and the whole point of the fast restart
path is to stop burning an engineer's day on that.  This module encodes
the monitoring rules as code: progress rate, ETA, and stall/availability
alerts computed from the same :class:`~repro.cluster.dashboard.Dashboard`
samples the Figure-8 view renders.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.dashboard import Dashboard


@dataclass(frozen=True)
class RolloverProgress:
    """A point-in-time reading of a rollover."""

    timestamp: float
    fraction_done: float
    upgrade_rate_per_second: float
    eta_seconds: float | None
    stalled: bool
    availability: float
    alerts: tuple[str, ...]


class RolloverMonitor:
    """Derives progress/ETA/alerts from dashboard samples.

    Parameters
    ----------
    stall_seconds:
        No leaf finishing within this window flags the rollover stalled
        (the condition that used to page the engineer).
    min_availability:
        An availability sample below this raises an alert — the batch
        policy is supposed to bound unavailability at the batch size.
    """

    def __init__(
        self,
        dashboard: Dashboard,
        stall_seconds: float = 1800.0,
        min_availability: float = 0.97,
    ) -> None:
        if stall_seconds <= 0:
            raise ValueError("stall window must be positive")
        if not 0 <= min_availability <= 1:
            raise ValueError("availability threshold must be a fraction")
        self.dashboard = dashboard
        self.stall_seconds = stall_seconds
        self.min_availability = min_availability

    def progress(self) -> RolloverProgress:
        """The current reading; raises if there are no samples yet."""
        samples = self.dashboard.samples
        if not samples:
            raise ValueError("no dashboard samples recorded yet")
        latest = samples[-1]
        total = max(1, latest.total)
        fraction = latest.new_version / total
        rate = self._recent_rate()
        remaining = total - latest.new_version
        eta = remaining / rate if rate > 0 else None
        stalled = self._is_stalled()
        alerts = []
        if stalled and remaining > 0:
            alerts.append(
                f"no leaf finished in the last {self.stall_seconds:.0f}s; "
                "rollover may be stuck"
            )
        if latest.availability < self.min_availability:
            alerts.append(
                f"availability {latest.availability:.1%} below the "
                f"{self.min_availability:.0%} floor"
            )
        return RolloverProgress(
            timestamp=latest.timestamp,
            fraction_done=fraction,
            upgrade_rate_per_second=rate,
            eta_seconds=eta,
            stalled=stalled,
            availability=latest.availability,
            alerts=tuple(alerts),
        )

    def _recent_rate(self) -> float:
        """Leaves upgraded per second over the trailing half of samples."""
        samples = self.dashboard.samples
        if len(samples) < 2:
            return 0.0
        window = samples[max(0, len(samples) // 2) - 1 :]
        first, last = window[0], window[-1]
        dt = last.timestamp - first.timestamp
        if dt <= 0:
            return 0.0
        return max(0.0, (last.new_version - first.new_version) / dt)

    def _is_stalled(self) -> bool:
        samples = self.dashboard.samples
        if len(samples) < 2:
            return False
        latest = samples[-1]
        if latest.new_version >= latest.total:
            return False
        # Find the last sample where the upgraded count advanced.
        last_advance = samples[0].timestamp
        for before, after in zip(samples, samples[1:]):
            if after.new_version > before.new_version:
                last_advance = after.timestamp
        return latest.timestamp - last_advance >= self.stall_seconds


def format_progress(progress: RolloverProgress) -> str:
    """One log line the way an on-call would want it."""
    eta = "done" if progress.fraction_done >= 1 else (
        f"ETA {progress.eta_seconds / 60:.0f} min"
        if progress.eta_seconds is not None
        else "ETA unknown"
    )
    line = (
        f"[rollover] {progress.fraction_done:.1%} complete, "
        f"{progress.upgrade_rate_per_second * 60:.1f} leaves/min, {eta}, "
        f"availability {progress.availability:.1%}"
    )
    if progress.alerts:
        line += " | ALERTS: " + "; ".join(progress.alerts)
    return line
