"""Table-level replication: the wire side of the REPLICA_RECOVERY rung.

A restarting leaf whose shared memory is gone has a faster source than
local disk: a sibling leaf on another machine that holds the same
sealed, compressed blocks.  This module is that wire path:

- :class:`ReplicaBlockServer` — a replica exposes its sealed blocks
  over a tiny framed TCP protocol.  Blocks are served in RBC wire
  format straight from the table (``to_encoded(copy=False)`` buffers
  behind :func:`~repro.shm.layout.packed_block_chunks`) — the replica
  never re-encodes, and the payload is byte-identical to
  :meth:`RowBlock.pack`.
- :class:`ReplicaFetchSession` — the restarting side: N concurrent
  connections pinned to one server-side session (a consistent snapshot
  of the replica's sealed blocks), so a pipelined multi-stream fetch
  sees one point-in-time catalog no matter how the streams interleave.
- :class:`ReplicaCatalog` — cluster placement: which standby mirrors
  each primary, lazily starting one block server per standby, plus the
  ingest-mirroring and query-failover hooks the cluster wires up.

Framing: every message is ``header | payload`` with a fixed
little-endian header ``(magic, version, kind, payload_len, crc32)``.
The CRC covers the payload, so a torn or bit-flipped frame surfaces as
:class:`~repro.errors.ReplicaWireError` — which the recovery ladder
treats exactly like a stale snapshot: abandon the rung all-or-nothing
and fall to the local disk rungs.

Protocol::

    client                              server
    ------                              ------
    HELLO {"open": true}          ->
                                  <-    CATALOG {"session": t, "tables": [...]}
    HELLO {"session": t}          ->    (each extra stream joins the session)
                                  <-    CATALOG {"session": t, ...}
    GET {"table": n, "index": i}  ->
                                  <-    BLOCK <packed block bytes>
    BYE {"session": t}            ->    (server drops the session)

Opening a session snapshots the replica's sealed blocks (Python
references pin them even if the replica expires data afterwards), so
every stream of one restore pulls from the same consistent image.
"""

from __future__ import annotations

import json
import queue
import socket
import struct
import threading
import zlib
from collections import deque
from dataclasses import dataclass
from itertools import count
from typing import TYPE_CHECKING, Callable

from repro.columnstore.rowblock import RowBlock
from repro.errors import ReplicaWireError, StateError
from repro.shm.layout import packed_block_chunks, packed_block_size

if TYPE_CHECKING:
    from repro.columnstore.leafmap import LeafMap
    from repro.server.leaf import LeafServer

WIRE_MAGIC = 0x50455252  # "RREP"
WIRE_VERSION = 1
#: magic, version, kind, payload length, payload crc32
_FRAME = struct.Struct("<IHHII")
#: Sanity cap on one frame's payload — a block is at most a few MB.
MAX_PAYLOAD = 1 << 31

FRAME_HELLO = 1
FRAME_CATALOG = 2
FRAME_GET = 3
FRAME_BLOCK = 4
FRAME_ERROR = 5
FRAME_BYE = 6

#: Concurrent block streams per fetch session (the pipelining width).
DEFAULT_STREAMS = 4

#: GET frames kept in flight ahead of the responses on one stream.
#: Requests are ~60 bytes, so a full window in the server's receive
#: buffer is negligible while it amortizes the per-block round trip
#: across the whole run of blocks.
DEFAULT_WINDOW = 32


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------


def _no_delay(sock: socket.socket) -> None:
    """Disable Nagle: the protocol is request/response with small frames,
    and a buffered header waiting out a delayed ACK costs ~40ms per
    block — three orders of magnitude over the wire time itself."""
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:
        pass  # not a TCP socket (tests may pass a socketpair)


def send_frame(sock: socket.socket, kind: int, *chunks) -> None:
    """Write one frame; chunks are sent back-to-back without joining."""
    length = sum(len(c) for c in chunks)
    crc = 0
    for chunk in chunks:
        crc = zlib.crc32(chunk, crc)
    header = _FRAME.pack(WIRE_MAGIC, WIRE_VERSION, kind, length, crc & 0xFFFFFFFF)
    try:
        sock.sendall(header)
        for chunk in chunks:
            sock.sendall(chunk)
    except OSError as exc:
        raise ReplicaWireError(f"replica stream send failed: {exc}") from exc


def _recv_exact(sock: socket.socket, nbytes: int) -> bytes:
    buf = bytearray()
    while len(buf) < nbytes:
        try:
            chunk = sock.recv(min(nbytes - len(buf), 1 << 20))
        except OSError as exc:
            raise ReplicaWireError(f"replica stream recv failed: {exc}") from exc
        if not chunk:
            raise ReplicaWireError("replica connection closed mid-frame")
        buf += chunk
    return bytes(buf)


def recv_frame(
    sock: socket.socket,
    mid_payload_fault: Callable[[], None] | None = None,
) -> tuple[int, bytes]:
    """Read one frame, validating magic, version, and payload CRC.

    ``mid_payload_fault`` fires between the header and the payload — the
    injection point for a connection dying mid-block.
    """
    header = _recv_exact(sock, _FRAME.size)
    magic, version, kind, length, crc = _FRAME.unpack(header)
    if magic != WIRE_MAGIC:
        raise ReplicaWireError(f"bad frame magic 0x{magic:08x}")
    if version != WIRE_VERSION:
        raise ReplicaWireError(f"unsupported wire version {version}")
    if length > MAX_PAYLOAD:
        raise ReplicaWireError(f"frame payload {length} exceeds cap")
    if mid_payload_fault is not None:
        mid_payload_fault()
    payload = _recv_exact(sock, length) if length else b""
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise ReplicaWireError("frame payload checksum mismatch")
    return kind, payload


def _raise_on_error(kind: int, payload: bytes, expected: int) -> None:
    if kind == FRAME_ERROR:
        raise ReplicaWireError(
            f"replica refused: {payload.decode('utf-8', 'replace')}"
        )
    if kind != expected:
        raise ReplicaWireError(f"expected frame kind {expected}, got {kind}")


# ----------------------------------------------------------------------
# Catalog shapes
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WireBlock:
    """One sealed block as described by a session catalog."""

    table: str
    index: int
    size: int
    row_count: int
    min_time: int
    max_time: int
    columns: tuple[str, ...]

    def overlaps(self, start_time: int | None, end_time: int | None) -> bool:
        if start_time is not None and self.max_time < start_time:
            return False
        if end_time is not None and self.min_time >= end_time:
            return False
        return True


@dataclass(frozen=True)
class WireTable:
    """One table as described by a session catalog."""

    name: str
    rows_ingested: int
    rows_expired: int
    blocks: tuple[WireBlock, ...]


#: name -> (sealed blocks, total_rows_ingested, total_rows_expired)
TableSnapshot = dict[str, tuple[list[RowBlock], int, int]]


def snapshot_leafmap(leafmap: LeafMap) -> TableSnapshot:
    """A point-in-time view of every table's sealed blocks.

    Blocks are immutable once sealed and the lists are copies, so the
    returned snapshot stays consistent while the source keeps ingesting
    or expiring.
    """
    return {
        table.name: (
            table.blocks,
            table.total_rows_ingested,
            table.total_rows_expired,
        )
        for table in leafmap
    }


def _catalog_payload(token: str, tables: TableSnapshot) -> bytes:
    doc = {"session": token, "tables": []}
    for name in sorted(tables):
        blocks, ingested, expired = tables[name]
        doc["tables"].append(
            {
                "name": name,
                "rows_ingested": ingested,
                "rows_expired": expired,
                "blocks": [
                    [
                        packed_block_size(block),
                        block.row_count,
                        block.min_time,
                        block.max_time,
                        list(block.schema.names),
                    ]
                    for block in blocks
                ],
            }
        )
    return json.dumps(doc).encode()


def _parse_catalog(payload: bytes) -> tuple[str, tuple[WireTable, ...]]:
    doc = json.loads(payload)
    tables = []
    for entry in doc["tables"]:
        name = entry["name"]
        blocks = tuple(
            WireBlock(
                table=name,
                index=index,
                size=size,
                row_count=row_count,
                min_time=min_time,
                max_time=max_time,
                columns=tuple(columns),
            )
            for index, (size, row_count, min_time, max_time, columns) in (
                enumerate(entry["blocks"])
            )
        )
        tables.append(
            WireTable(
                name=name,
                rows_ingested=entry["rows_ingested"],
                rows_expired=entry["rows_expired"],
                blocks=blocks,
            )
        )
    return doc["session"], tuple(tables)


# ----------------------------------------------------------------------
# Server side
# ----------------------------------------------------------------------


class ReplicaBlockServer:
    """Serves one replica's sealed blocks to restarting siblings.

    ``snapshot_source`` is called once per opened session and must
    return a :data:`TableSnapshot`; holding the block references pins
    that image for the session's lifetime, so every joined stream pulls
    from the same bytes.
    """

    def __init__(
        self,
        snapshot_source: Callable[[], TableSnapshot],
        host: str = "127.0.0.1",
    ) -> None:
        self._snapshot_source = snapshot_source
        self._sock = socket.create_server((host, 0))
        self.address: tuple[str, int] = self._sock.getsockname()[:2]
        self._lock = threading.Lock()
        self._sessions: dict[str, TableSnapshot] = {}
        self._catalogs: dict[str, bytes] = {}
        self._conns: set[socket.socket] = set()
        self._tokens = count(1)
        self._closed = False
        self.sessions_opened = 0
        self.blocks_served = 0
        self.bytes_served = 0
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="replica-accept", daemon=True
        )
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return  # closed
            _no_delay(conn)
            with self._lock:
                if self._closed:
                    conn.close()
                    return
                self._conns.add(conn)
            threading.Thread(
                target=self._serve_conn,
                args=(conn,),
                name="replica-stream",
                daemon=True,
            ).start()

    def _serve_conn(self, conn: socket.socket) -> None:
        session: TableSnapshot | None = None
        try:
            with conn:
                while True:
                    kind, payload = recv_frame(conn)
                    if kind == FRAME_BYE:
                        self._drop_session(payload)
                        return
                    if kind == FRAME_HELLO:
                        session = self._handle_hello(conn, payload)
                    elif kind == FRAME_GET:
                        if session is None:
                            send_frame(conn, FRAME_ERROR, b"GET before HELLO")
                        else:
                            self._handle_get(conn, session, payload)
                    else:
                        send_frame(
                            conn, FRAME_ERROR, f"bad frame kind {kind}".encode()
                        )
        except (ReplicaWireError, OSError):
            return  # client went away; nothing to clean beyond the conn
        finally:
            with self._lock:
                self._conns.discard(conn)

    def _handle_hello(
        self, conn: socket.socket, payload: bytes
    ) -> TableSnapshot | None:
        request = json.loads(payload)
        token = request.get("session")
        if token:
            with self._lock:
                session = self._sessions.get(token)
            if session is None:
                send_frame(conn, FRAME_ERROR, f"unknown session {token}".encode())
                return None
            # A joining stream already has the catalog from the opening
            # stream; acknowledging with an empty table list keeps the
            # join round trip at two small frames.
            brief = json.dumps({"session": token, "tables": []}).encode()
            send_frame(conn, FRAME_CATALOG, brief)
            return session
        session = self._snapshot_source()
        with self._lock:
            token = f"s{next(self._tokens)}"
            catalog = _catalog_payload(token, session)
            self._sessions[token] = session
            self._catalogs[token] = catalog
            self.sessions_opened += 1
        send_frame(conn, FRAME_CATALOG, catalog)
        return session

    def _handle_get(
        self, conn: socket.socket, session: TableSnapshot, payload: bytes
    ) -> None:
        request = json.loads(payload)
        table = request.get("table")
        index = request.get("index", -1)
        entry = session.get(table)
        if entry is None or not 0 <= index < len(entry[0]):
            send_frame(
                conn, FRAME_ERROR, f"no block {table}[{index}]".encode()
            )
            return
        chunks = packed_block_chunks(entry[0][index])
        send_frame(conn, FRAME_BLOCK, *chunks)
        with self._lock:
            self.blocks_served += 1
            self.bytes_served += sum(len(c) for c in chunks)

    def _drop_session(self, payload: bytes) -> None:
        try:
            token = json.loads(payload).get("session") if payload else None
        except ValueError:
            token = None
        if token:
            with self._lock:
                self._sessions.pop(token, None)
                self._catalogs.pop(token, None)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            conns = list(self._conns)
            self._conns.clear()
        try:
            self._sock.close()
        except OSError:
            pass
        # Active streams die with the server: a restore mid-pull sees the
        # connection drop and falls down the ladder instead of hanging.
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        with self._lock:
            self._sessions.clear()
            self._catalogs.clear()


# ----------------------------------------------------------------------
# Client side
# ----------------------------------------------------------------------


class ReplicaFetchSession:
    """N connections pinned to one replica session.

    ``fetch`` is thread-safe: callers borrow a connection from the pool,
    run one GET/BLOCK exchange, and return it — the pipelined restore
    runs ``streams`` fetches concurrently.  Any wire failure marks the
    whole session broken (the rung is all-or-nothing), closes the bad
    connection, and raises :class:`ReplicaWireError`.

    ``fault`` is the engine's fault-injection hook; the session fires
    ``replica:stream`` at the start of each fetch and ``replica:block``
    between a BLOCK frame's header and payload.
    """

    def __init__(
        self,
        address: tuple[str, int],
        streams: int = DEFAULT_STREAMS,
        timeout: float = 10.0,
        fault: Callable[[str], None] | None = None,
    ) -> None:
        self.streams = max(1, int(streams))
        self._timeout = timeout
        #: Fault-injection hook; the owning engine re-points this at its
        #: own ``_fault`` so wire phases share the engine's hook table.
        self.fault = fault if fault is not None else (lambda point: None)
        self._sockets: list[socket.socket] = []
        self._pool: queue.Queue[socket.socket] = queue.Queue()
        self._closed = False
        self._broken = False
        self.token = ""
        self.tables: tuple[WireTable, ...] = ()
        try:
            self._join(address, opening=True)
            extras = self.streams - 1
            if extras:
                # Joining streams are independent connects acknowledged
                # with a two-frame handshake; opening them concurrently
                # keeps session setup at ~one round trip regardless of
                # the stream count.
                from concurrent.futures import ThreadPoolExecutor

                with ThreadPoolExecutor(
                    max_workers=extras, thread_name_prefix="replica-join"
                ) as pool:
                    joins = [
                        pool.submit(self._join, address, False)
                        for _ in range(extras)
                    ]
                    for join in joins:
                        join.result()
        except BaseException:
            self.close()
            raise

    def _join(self, address: tuple[str, int], opening: bool) -> None:
        try:
            sock = socket.create_connection(address, timeout=self._timeout)
        except OSError as exc:
            raise ReplicaWireError(
                f"cannot reach replica at {address}: {exc}"
            ) from exc
        _no_delay(sock)
        self._sockets.append(sock)
        request = {"open": True} if opening else {"session": self.token}
        send_frame(sock, FRAME_HELLO, json.dumps(request).encode())
        kind, payload = recv_frame(sock)
        _raise_on_error(kind, payload, FRAME_CATALOG)
        if opening:
            token, tables = _parse_catalog(payload)
            self.token = token
            self.tables = tables
        elif json.loads(payload).get("session") != self.token:
            raise ReplicaWireError("replica session token mismatch")
        self._pool.put(sock)

    def blocks(self) -> list[WireBlock]:
        """Every block in the session catalog, in table/directory order."""
        return [block for table in self.tables for block in table.blocks]

    @property
    def total_bytes(self) -> int:
        return sum(b.size for t in self.tables for b in t.blocks)

    def fetch(self, table: str, index: int) -> bytes:
        """One GET/BLOCK exchange; returns the packed block payload."""
        self.fault("replica:stream")
        if self._broken or self._closed:
            raise ReplicaWireError("replica session already failed")
        try:
            conn = self._pool.get(timeout=self._timeout)
        except queue.Empty:
            raise ReplicaWireError("no replica stream available") from None
        ok = False
        try:
            send_frame(
                conn,
                FRAME_GET,
                json.dumps({"table": table, "index": index}).encode(),
            )
            kind, payload = recv_frame(
                conn, mid_payload_fault=lambda: self.fault("replica:block")
            )
            _raise_on_error(kind, payload, FRAME_BLOCK)
            ok = True
            return payload
        finally:
            if ok:
                self._pool.put(conn)
            else:
                # The conn may hold half a frame; it never returns to the
                # pool, and one bad stream condemns the session.
                self._broken = True
                try:
                    conn.close()
                except OSError:
                    pass

    def fetch_many(
        self,
        requests: list[tuple[str, int]],
        handler: Callable[[str, int, bytes], None],
        window: int = DEFAULT_WINDOW,
    ) -> None:
        """Windowed pipelined GETs on one borrowed connection.

        Keeps up to ``window`` GET frames in flight ahead of the
        responses and calls ``handler(table, index, payload)`` as each
        BLOCK frame lands — one stream pays the request/response round
        trip once per window instead of once per block.  Responses
        arrive in request order (the server answers each connection
        sequentially).  Failure semantics match :meth:`fetch`: any wire
        error condemns the connection and the session.
        """
        if not requests:
            return
        self.fault("replica:stream")
        if self._broken or self._closed:
            raise ReplicaWireError("replica session already failed")
        try:
            conn = self._pool.get(timeout=self._timeout)
        except queue.Empty:
            raise ReplicaWireError("no replica stream available") from None
        ok = False
        try:
            pending: deque[tuple[str, int]] = deque()
            for table, index in requests:
                send_frame(
                    conn,
                    FRAME_GET,
                    json.dumps({"table": table, "index": index}).encode(),
                )
                pending.append((table, index))
                if len(pending) >= window:
                    self._receive_block(conn, pending, handler)
            while pending:
                self._receive_block(conn, pending, handler)
            ok = True
        finally:
            if ok:
                self._pool.put(conn)
            else:
                self._broken = True
                try:
                    conn.close()
                except OSError:
                    pass

    def _receive_block(
        self,
        conn: socket.socket,
        pending: deque,
        handler: Callable[[str, int, bytes], None],
    ) -> None:
        kind, payload = recv_frame(
            conn, mid_payload_fault=lambda: self.fault("replica:block")
        )
        _raise_on_error(kind, payload, FRAME_BLOCK)
        table, index = pending.popleft()
        handler(table, index, payload)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self.token and not self._broken:
            try:
                conn = self._pool.get_nowait()
                send_frame(
                    conn, FRAME_BYE, json.dumps({"session": self.token}).encode()
                )
            except (queue.Empty, ReplicaWireError):
                pass
        for sock in self._sockets:
            try:
                sock.close()
            except OSError:
                pass


# ----------------------------------------------------------------------
# Cluster placement
# ----------------------------------------------------------------------


class ReplicaCatalog:
    """Which standby leaf mirrors each primary, and how to reach it.

    One block server per standby starts lazily on first use and lives
    for the catalog's lifetime.  The catalog also carries the two hooks
    the cluster wires through it: ``mirror`` (the tailer duplicates
    every delivered batch to the primary's standby, keeping the replica
    block-for-block identical) and ``replica_for`` (the aggregator
    substitutes the standby while the primary is restarting).
    """

    def __init__(self, streams: int = DEFAULT_STREAMS) -> None:
        self._streams = streams
        self._lock = threading.Lock()
        self._replicas: dict[str, LeafServer] = {}
        self._servers: dict[str, ReplicaBlockServer] = {}
        self._closed = False
        self.batches_mirrored = 0
        self.batches_dropped = 0

    def assign(self, primary_id: str, replica: LeafServer) -> None:
        with self._lock:
            self._replicas[primary_id] = replica

    def replica_for(self, primary_id: str) -> LeafServer | None:
        with self._lock:
            return self._replicas.get(primary_id)

    @property
    def replicas(self) -> list[LeafServer]:
        with self._lock:
            return list(self._replicas.values())

    def server_for(self, primary_id: str) -> ReplicaBlockServer | None:
        with self._lock:
            replica = self._replicas.get(primary_id)
            if replica is None or self._closed:
                return None
            server = self._servers.get(primary_id)
            if server is None:
                server = ReplicaBlockServer(replica.sealed_snapshot)
                self._servers[primary_id] = server
            return server

    def session_source(
        self, primary_id: str
    ) -> Callable[[], ReplicaFetchSession | None]:
        """A provider the primary's engine calls at ladder time.

        Lazy on purpose: the TCP connect happens when (and where) the
        rung runs — including inside a forked restore worker, which
        connects back to the coordinator process's server thread.
        """

        def open_session() -> ReplicaFetchSession | None:
            server = self.server_for(primary_id)
            if server is None:
                return None
            try:
                return ReplicaFetchSession(server.address, streams=self._streams)
            except ReplicaWireError:
                return None

        return open_session

    def mirror(self, primary_id: str, table: str, rows: list[dict]) -> bool:
        """Duplicate one delivered batch to the primary's standby.

        Batches land in delivery order with the same rows-per-block
        seal boundaries, so the standby's sealed blocks are
        digest-identical to the primary's.
        """
        with self._lock:
            replica = self._replicas.get(primary_id)
        if replica is None:
            return False
        try:
            replica.add_rows(table, rows)
        except StateError:
            with self._lock:
                self.batches_dropped += 1
            return False
        with self._lock:
            self.batches_mirrored += 1
        return True

    def close(self) -> None:
        with self._lock:
            self._closed = True
            servers = list(self._servers.values())
            self._servers.clear()
        for server in servers:
            server.close()


__all__ = [
    "DEFAULT_STREAMS",
    "DEFAULT_WINDOW",
    "FRAME_BLOCK",
    "FRAME_BYE",
    "FRAME_CATALOG",
    "FRAME_ERROR",
    "FRAME_GET",
    "FRAME_HELLO",
    "MAX_PAYLOAD",
    "ReplicaBlockServer",
    "ReplicaCatalog",
    "ReplicaFetchSession",
    "TableSnapshot",
    "WireBlock",
    "WireTable",
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "recv_frame",
    "send_frame",
    "snapshot_leafmap",
]
