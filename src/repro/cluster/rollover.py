"""Rolling cluster restarts (paper, Sections 1, 4.5 and 6).

"To maintain high availability of data without replication, we typically
restart only 2% of Scuba servers at a time" — with the additional rule
that at most one leaf per machine restarts at once, so every restarting
leaf gets its machine's full disk (or memory) bandwidth.

:class:`RolloverCoordinator` drives a real in-process cluster through a
version upgrade.  Wall-clock timings of these scaled-down rollovers feed
the measured side of experiments E1/E3; the full-scale timings come from
:mod:`repro.sim`, which replays the same policy against the paper's
hardware profile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cluster.cluster import Cluster
from repro.cluster.dashboard import Dashboard
from repro.core.engine import RestartReport
from repro.core.watchdog import CooperativeDeadline
from repro.server.leaf import LeafServer, LeafStatus

#: Paper: "we typically restart only 2% of the servers at a time".
DEFAULT_BATCH_FRACTION = 0.02


@dataclass
class RolloverResult:
    """Summary of one completed rollover."""

    new_version: str
    use_shm: bool
    leaves_restarted: int = 0
    batches: int = 0
    stragglers: int = 0  # shm copies that failed; recovered from disk
    wall_seconds: float = 0.0
    dashboard: Dashboard = field(default_factory=Dashboard)
    restart_reports: list[RestartReport] = field(default_factory=list)
    min_availability: float = 1.0

    @property
    def mean_availability(self) -> float:
        return self.dashboard.mean_availability()


class RolloverCoordinator:
    """Upgrades every leaf of a cluster to a new binary version."""

    def __init__(
        self,
        cluster: Cluster,
        new_version: str,
        batch_fraction: float = DEFAULT_BATCH_FRACTION,
        use_shm: bool = True,
        shutdown_deadline_seconds: float | None = None,
    ) -> None:
        if not 0 < batch_fraction <= 1:
            raise ValueError("batch fraction must be in (0, 1]")
        self.cluster = cluster
        self.new_version = new_version
        self.batch_fraction = batch_fraction
        self.use_shm = use_shm
        #: Optional §4.3 deadline applied to each shm shutdown.  A copy
        #: that overruns (or fails for any reason) is treated like a
        #: kill: the leaf comes back from disk and the rollover goes on.
        self.shutdown_deadline_seconds = shutdown_deadline_seconds

    @property
    def batch_size(self) -> int:
        return max(1, math.ceil(len(self.cluster.leaves) * self.batch_fraction))

    def select_batch(self) -> list[LeafServer]:
        """The next leaves to restart.

        At most ``batch_size`` leaves still on the old version, at most
        one per machine — the rule that multiplies effective recovery
        bandwidth by the number of leaves per machine (Sections 2, 6).
        """
        batch: list[LeafServer] = []
        for machine in self.cluster.machines:
            if len(batch) >= self.batch_size:
                break
            if machine.restarting_leaves:
                continue  # this machine is already busy
            for leaf in machine.leaves:
                if leaf.version != self.new_version and leaf.is_alive:
                    batch.append(leaf)
                    break
        return batch

    def _sample(self, dashboard: Dashboard) -> None:
        old = 0
        rolling = 0
        new = 0
        for leaf in self.cluster.leaves:
            if leaf.status in (LeafStatus.DOWN, LeafStatus.SHUTTING_DOWN) or (
                not leaf.is_alive
            ):
                rolling += 1
            elif leaf.version == self.new_version:
                new += 1
            else:
                old += 1
        dashboard.record(
            self.cluster.clock.now(), old, rolling, new, self.cluster.availability
        )

    def run(self) -> RolloverResult:
        """Perform the full rollover, one batch at a time."""
        result = RolloverResult(new_version=self.new_version, use_shm=self.use_shm)
        start = self.cluster.clock.now()
        self._sample(result.dashboard)
        while True:
            batch = self.select_batch()
            if not batch:
                break
            result.batches += 1
            # Shut the whole batch down (each on a distinct machine),
            # then restart each — the shutdowns overlap in production;
            # in-process we do them back to back, which preserves the
            # dashboard's shape (the sim layer models true concurrency).
            for leaf in batch:
                deadline = None
                if self.use_shm and self.shutdown_deadline_seconds is not None:
                    deadline = CooperativeDeadline(
                        self.shutdown_deadline_seconds, clock=self.cluster.clock
                    )
                try:
                    report = leaf.shutdown(use_shm=self.use_shm, deadline=deadline)
                except Exception:
                    # The deploy script's kill: heap is gone, valid bit
                    # unset; the replacement restarts from disk below.
                    result.stragglers += 1
                    report = None
                if report is not None:
                    result.restart_reports.append(report)
            self._sample(result.dashboard)
            for leaf in batch:
                leaf.version = self.new_version
                report = leaf.start()
                result.restart_reports.append(report)
                result.leaves_restarted += 1
            self._sample(result.dashboard)
        result.wall_seconds = self.cluster.clock.now() - start
        result.min_availability = result.dashboard.min_availability
        return result
