"""Process-level deployment: the script behind Section 4.3 and 4.5.

"The script that issues the shutdown command to each leaf then waits in
a loop for the leaf server process to die [...] we kill the leaf server
if it has not shut down after 3 minutes."

:class:`ProcessDeployment` manages a fleet of real
:class:`~repro.server.process_client.LeafProcess` workers and performs a
rolling binary upgrade over actual operating system processes: shutdown
(to shared memory) → wait-or-kill → spawn the new version → verify it is
serving — a few leaves at a time, the rest of the fleet answering
queries throughout.
"""

from __future__ import annotations

import math
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.cluster.dashboard import Dashboard
from repro.core.watchdog import DEFAULT_SHUTDOWN_DEADLINE_SECONDS
from repro.query.aggregate import merge_leaf_results
from repro.query.query import Query, QueryResult
from repro.server.process_client import LeafProcess, LeafProcessConfig
from repro.util.clock import Clock, SystemClock


@dataclass
class ProcessRolloverResult:
    """Summary of a process-level rolling upgrade."""

    new_version: str
    leaves_restarted: int = 0
    batches: int = 0
    clean_shutdowns: int = 0
    killed: int = 0
    recovered_via: dict[str, int] = field(default_factory=dict)
    wall_seconds: float = 0.0
    dashboard: Dashboard = field(default_factory=Dashboard)


class ProcessDeployment:
    """A fleet of leaf worker processes plus the deploy tooling."""

    def __init__(
        self,
        backup_root: str | Path,
        n_leaves: int,
        namespace: str = "scuba",
        version: str = "v1",
        rows_per_block: int | None = None,
        clock: Clock | None = None,
    ) -> None:
        if n_leaves < 1:
            raise ValueError("a deployment needs at least one leaf")
        self.clock = clock or SystemClock()
        root = Path(backup_root)
        self.leaves = [
            LeafProcess(
                LeafProcessConfig(
                    leaf_id=str(index),
                    backup_dir=root / f"leaf-{index}",
                    namespace=namespace,
                    version=version,
                    rows_per_block=rows_per_block,
                )
            )
            for index in range(n_leaves)
        ]

    # ------------------------------------------------------------------
    # Fleet lifecycle
    # ------------------------------------------------------------------

    def start_all(self) -> list[dict]:
        return [leaf.spawn() for leaf in self.leaves]

    def stop_all(self) -> None:
        """Tear the fleet down without shared memory (tests/teardown)."""
        for leaf in self.leaves:
            if leaf.running:
                leaf.shutdown(use_shm=False, deadline_seconds=60.0)

    @property
    def running_leaves(self) -> list[LeafProcess]:
        return [leaf for leaf in self.leaves if leaf.running]

    # ------------------------------------------------------------------
    # Query fan-out (a process-level aggregator)
    # ------------------------------------------------------------------

    def query(self, query: Query) -> QueryResult:
        partials = [leaf.query_partial(query) for leaf in self.running_leaves]
        result = merge_leaf_results(query, partials, leaves_total=len(self.leaves))
        return result

    def ingest(self, table: str, rows: list[dict], batch_rows: int = 500) -> int:
        """Round-robin batches over running leaves (a minimal tailer)."""
        total = 0
        targets = self.running_leaves
        if not targets:
            raise RuntimeError("no running leaves to ingest into")
        for index in range(0, len(rows), batch_rows):
            batch = rows[index : index + batch_rows]
            total += targets[(index // batch_rows) % len(targets)].add_rows(table, batch)
        return total

    def sync_all(self) -> int:
        return sum(leaf.sync() for leaf in self.running_leaves)

    # ------------------------------------------------------------------
    # The rolling upgrade
    # ------------------------------------------------------------------

    def _sample(self, dashboard: Dashboard, new_version: str) -> None:
        old = rolling = new = 0
        for leaf in self.leaves:
            if not leaf.running:
                rolling += 1
            elif leaf.config.version == new_version:
                new += 1
            else:
                old += 1
        total = max(1, len(self.leaves))
        dashboard.record(
            self.clock.now(), old, rolling, new, 1.0 - rolling / total
        )

    def rolling_upgrade(
        self,
        new_version: str,
        batch_fraction: float = 0.02,
        use_shm: bool = True,
        shutdown_deadline: float = DEFAULT_SHUTDOWN_DEADLINE_SECONDS,
        workers: int = 1,
    ) -> ProcessRolloverResult:
        """Upgrade every leaf process to ``new_version``.

        Each batch: issue shutdowns, wait-or-kill, respawn with the new
        version, and confirm the recovery method.  A killed leaf (copy
        overran the deadline) comes back via disk — the result counts
        both paths.

        ``workers`` > 1 drives each batch's shutdowns — and then its
        respawns — concurrently; since the leaves are separate OS
        processes, that parallelism is real even from a single deploy
        script.  Batches still run one after another, which is what
        keeps most of the fleet serving.
        """
        if not 0 < batch_fraction <= 1:
            raise ValueError("batch fraction must be in (0, 1]")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        batch_size = max(1, math.ceil(len(self.leaves) * batch_fraction))
        result = ProcessRolloverResult(new_version=new_version)
        start = self.clock.now()
        self._sample(result.dashboard, new_version)
        pending = [
            leaf for leaf in self.leaves if leaf.config.version != new_version
        ]

        def shut_one(leaf: LeafProcess) -> bool:
            return leaf.shutdown(use_shm=use_shm, deadline_seconds=shutdown_deadline)

        def spawn_one(leaf: LeafProcess) -> dict:
            leaf.config.version = new_version
            return leaf.spawn()

        def run(fn, batch: list[LeafProcess]) -> list:
            # Fan out over the batch, collect in batch order; counters
            # are aggregated by the caller, never from worker threads.
            if workers == 1 or len(batch) == 1:
                return [fn(leaf) for leaf in batch]
            with ThreadPoolExecutor(max_workers=min(workers, len(batch))) as pool:
                return list(pool.map(fn, batch))

        for index in range(0, len(pending), batch_size):
            batch = pending[index : index + batch_size]
            result.batches += 1
            for clean in run(shut_one, batch):
                if clean:
                    result.clean_shutdowns += 1
                else:
                    result.killed += 1
            self._sample(result.dashboard, new_version)
            for report in run(spawn_one, batch):
                method = report["method"]
                result.recovered_via[method] = result.recovered_via.get(method, 0) + 1
                result.leaves_restarted += 1
            self._sample(result.dashboard, new_version)
        result.wall_seconds = self.clock.now() - start
        return result
