"""The Scuba cluster: machines × leaves, a root aggregator, and ingest.

Data for each table is spread over many leaves by the tailers' two-
random-choices routing, so every leaf holds "a fraction of most tables"
(paper, Section 2.1).
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Iterable, Mapping

from repro.cluster.replication import DEFAULT_STREAMS, ReplicaCatalog
from repro.disk.backup import DiskBackup
from repro.ingest.scribe import ScribeLog
from repro.ingest.tailer import Tailer
from repro.query.query import Query, QueryResult
from repro.server.aggregator import Aggregator, AggregatorTree
from repro.server.leaf import DEFAULT_CAPACITY_BYTES, LeafServer
from repro.server.machine import DEFAULT_LEAVES_PER_MACHINE, Machine
from repro.types import ColumnValue
from repro.util.clock import Clock, SystemClock


class Cluster:
    """A set of machines behaving as one Scuba deployment."""

    def __init__(
        self,
        n_machines: int,
        backup_root: str | Path,
        leaves_per_machine: int = DEFAULT_LEAVES_PER_MACHINE,
        namespace: str = "scuba",
        capacity_bytes: int = DEFAULT_CAPACITY_BYTES,
        clock: Clock | None = None,
        rows_per_block: int | None = None,
        version: str = "v1",
        rng: random.Random | None = None,
        replication: bool = False,
        replica_streams: int = DEFAULT_STREAMS,
    ) -> None:
        if n_machines < 1:
            raise ValueError("a cluster needs at least one machine")
        self.clock = clock or SystemClock()
        self.namespace = namespace
        self._rng = rng or random.Random()
        self.machines = [
            Machine(
                machine_id=str(index),
                backup_root=backup_root,
                leaves_per_machine=leaves_per_machine,
                namespace=namespace,
                capacity_bytes=capacity_bytes,
                clock=self.clock,
                rows_per_block=rows_per_block,
                version=version,
            )
            for index in range(n_machines)
        ]
        self.scribe = ScribeLog()
        self._tailers: dict[str, Tailer] = {}
        # Figure 1's two-level structure: the root aggregator merges one
        # pre-merged partial per machine aggregator.
        self.root_aggregator = AggregatorTree(
            [machine.aggregator for machine in self.machines]
        )
        #: A flat aggregator over every leaf, kept for equivalence tests
        #: (tree and flat merges must agree).
        self.flat_aggregator = Aggregator(self.leaves)
        #: Table-level replication (the replica recovery tier).  Each
        #: primary gets a standby leaf hosted on the *next* machine —
        #: surviving a machine-wide outage of the primary's host — in
        #: its own shm namespace and backup directory, outside the
        #: machine aggregators' fan-out and the tailers' routing pool.
        self.replica_catalog: ReplicaCatalog | None = None
        self.replica_leaves: list[LeafServer] = []
        if replication:
            self.replica_catalog = ReplicaCatalog(streams=replica_streams)
            root = Path(backup_root)
            n = len(self.machines)
            for index, machine in enumerate(self.machines):
                host = self.machines[(index + 1) % n]
                for leaf in machine.leaves:
                    replica = LeafServer(
                        leaf_id=f"{leaf.leaf_id}r",
                        backup=DiskBackup(
                            root
                            / f"machine-{host.machine_id}"
                            / f"replica-{leaf.leaf_id}"
                        ),
                        namespace=f"{namespace}-rep",
                        capacity_bytes=capacity_bytes,
                        clock=self.clock,
                        rows_per_block=rows_per_block,
                        version=version,
                        machine_id=host.machine_id,
                    )
                    self.replica_leaves.append(replica)
                    self.replica_catalog.assign(leaf.leaf_id, replica)
                    leaf.engine.replica_source = (
                        self.replica_catalog.session_source(leaf.leaf_id)
                    )
            for machine in self.machines:
                machine.aggregator.replica_router = self.replica_catalog.replica_for
            self.flat_aggregator.replica_router = self.replica_catalog.replica_for

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    @property
    def leaves(self) -> list[LeafServer]:
        return [leaf for machine in self.machines for leaf in machine.leaves]

    @property
    def alive_leaves(self) -> list[LeafServer]:
        return [leaf for leaf in self.leaves if leaf.is_alive]

    def leaf_by_id(self, leaf_id: str) -> LeafServer:
        for leaf in self.leaves:
            if leaf.leaf_id == leaf_id:
                return leaf
        raise KeyError(f"no leaf with id '{leaf_id}'")

    def machine_of(self, leaf: LeafServer) -> Machine:
        for machine in self.machines:
            if leaf in machine.leaves:
                return machine
        raise KeyError(f"leaf {leaf.leaf_id} belongs to no machine")

    def start_all(self) -> None:
        for machine in self.machines:
            machine.start_all()
        for replica in self.replica_leaves:
            replica.start()

    @property
    def availability(self) -> float:
        """Fraction of leaves currently able to answer queries."""
        leaves = self.leaves
        if not leaves:
            return 1.0
        return sum(1 for leaf in leaves if leaf.accepts_queries) / len(leaves)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def tailer_for(self, table: str, batch_rows: int = 1000) -> Tailer:
        """The (singleton) tailer feeding ``table``."""
        tailer = self._tailers.get(table)
        if tailer is None:
            tailer = Tailer(
                scribe=self.scribe,
                category=table,
                table=table,
                leaves=self.leaves,
                batch_rows=batch_rows,
                rng=self._rng,
                clock=self.clock,
                mirror=(
                    self.replica_catalog.mirror
                    if self.replica_catalog is not None
                    else None
                ),
            )
            self._tailers[table] = tailer
        return tailer

    def ingest(
        self,
        table: str,
        rows: Iterable[Mapping[str, ColumnValue]],
        batch_rows: int = 1000,
    ) -> int:
        """Log rows to Scribe and drain them into leaves via the tailer."""
        self.scribe.append(table, rows)
        return self.tailer_for(table, batch_rows=batch_rows).drain()

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------

    def query(self, query: Query) -> QueryResult:
        return self.root_aggregator.query(query)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def sync_all(self) -> int:
        """A cluster-wide disk sync point; returns rows written."""
        return sum(leaf.sync_to_disk() for leaf in self.leaves if leaf.is_alive)

    def close(self) -> None:
        """Release replication resources (block servers, sockets)."""
        if self.replica_catalog is not None:
            self.replica_catalog.close()

    def total_rows(self) -> int:
        return sum(leaf.leafmap.row_count for leaf in self.leaves)

    def version_counts(self) -> dict[str, int]:
        """Leaves per binary version (the dashboard's horizontal axis)."""
        counts: dict[str, int] = {}
        for leaf in self.leaves:
            counts[leaf.version] = counts.get(leaf.version, 0) + 1
        return counts
