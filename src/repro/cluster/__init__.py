"""Cluster-level composition: many machines, rolling restarts, dashboard.

This is Section 4.5 of the paper: shutting down and restarting hundreds
of leaf servers, a few percent at a time, while a dashboard tracks how
many servers run the old version, are mid-rollover, and run the new one
(Figure 8).
"""

from repro.cluster.canary import CanaryDeployment, CanaryResult
from repro.cluster.cluster import Cluster
from repro.cluster.dashboard import Dashboard, DashboardSample, render_dashboard
from repro.cluster.deploy import ProcessDeployment, ProcessRolloverResult
from repro.cluster.monitor import RolloverMonitor, RolloverProgress, format_progress
from repro.cluster.replication import (
    ReplicaBlockServer,
    ReplicaCatalog,
    ReplicaFetchSession,
    snapshot_leafmap,
)
from repro.cluster.rollover import RolloverCoordinator, RolloverResult

__all__ = [
    "CanaryDeployment",
    "CanaryResult",
    "Cluster",
    "ReplicaBlockServer",
    "ReplicaCatalog",
    "ReplicaFetchSession",
    "snapshot_leafmap",
    "Dashboard",
    "DashboardSample",
    "ProcessDeployment",
    "ProcessRolloverResult",
    "RolloverCoordinator",
    "RolloverMonitor",
    "RolloverProgress",
    "RolloverResult",
    "format_progress",
    "render_dashboard",
]
