"""Canary deployments of experimental builds (paper, §6).

"Furthermore, this fast rollover path allows us to deploy experimental
software builds on a handful of machines, which we could not do if it
took longer.  We can add more logging, test bug fixes, and try new
software designs — and then revert the changes if we wish."

:class:`CanaryDeployment` upgrades the leaves of a few machines to an
experimental version through shared memory, runs caller-supplied
validation against the mixed-version cluster, and either promotes the
build to the whole fleet or reverts the canaries — each transition being
just another fast restart, which is why the workflow is viable at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.cluster.cluster import Cluster
from repro.errors import StateError
from repro.server.machine import Machine


@dataclass
class CanaryResult:
    """Outcome of one canary evaluation."""

    experimental_version: str
    baseline_version: str
    canary_machines: list[str] = field(default_factory=list)
    validations_passed: int = 0
    validations_failed: int = 0
    outcome: str = "pending"  # "promoted" | "reverted" | "pending"

    @property
    def healthy(self) -> bool:
        return self.validations_failed == 0


class CanaryDeployment:
    """Runs an experimental build on a handful of machines."""

    def __init__(
        self,
        cluster: Cluster,
        experimental_version: str,
        n_canary_machines: int = 1,
    ) -> None:
        if n_canary_machines < 1:
            raise ValueError("need at least one canary machine")
        if n_canary_machines >= len(cluster.machines):
            raise ValueError(
                "canaries must be a strict subset of the cluster "
                f"({n_canary_machines} of {len(cluster.machines)} machines requested)"
            )
        self.cluster = cluster
        self.experimental_version = experimental_version
        self._canaries: list[Machine] = list(cluster.machines[:n_canary_machines])
        versions = {leaf.version for leaf in cluster.leaves}
        if len(versions) != 1:
            raise StateError(
                f"cluster must be on one version to canary (found {sorted(versions)})"
            )
        self.baseline_version = versions.pop()
        self._deployed = False

    @property
    def canary_machines(self) -> list[Machine]:
        return list(self._canaries)

    def _restart_machine_to(self, machine: Machine, version: str) -> None:
        """Restart a machine's leaves one at a time through shared
        memory (the §4.2 one-leaf-per-machine rule)."""
        for leaf in machine.leaves:
            leaf.shutdown(use_shm=True)
            leaf.version = version
            leaf.start()

    def deploy(self) -> None:
        """Put the experimental build on the canary machines."""
        if self._deployed:
            raise StateError("canary is already deployed")
        for machine in self._canaries:
            self._restart_machine_to(machine, self.experimental_version)
        self._deployed = True

    def evaluate(
        self,
        validations: list[Callable[[Cluster], bool]],
        promote_on_success: bool = False,
    ) -> CanaryResult:
        """Run validations against the mixed-version cluster and either
        revert the canaries (default, or on any failure) or promote the
        experimental build fleet-wide."""
        if not self._deployed:
            raise StateError("deploy() the canary before evaluating it")
        result = CanaryResult(
            experimental_version=self.experimental_version,
            baseline_version=self.baseline_version,
            canary_machines=[machine.machine_id for machine in self._canaries],
        )
        for validate in validations:
            try:
                ok = bool(validate(self.cluster))
            except Exception:
                ok = False
            if ok:
                result.validations_passed += 1
            else:
                result.validations_failed += 1
        if result.healthy and promote_on_success:
            for machine in self.cluster.machines:
                if machine in self._canaries:
                    continue
                self._restart_machine_to(machine, self.experimental_version)
            result.outcome = "promoted"
        else:
            for machine in self._canaries:
                self._restart_machine_to(machine, self.baseline_version)
            result.outcome = "reverted"
        self._deployed = False
        return result
