"""The rollover dashboard (paper, Figure 8).

At each sampling instant the dashboard records how many leaves run the
old version, are mid-rollover, and run the new version, plus the fraction
of data available to queries.  ``render_dashboard`` produces an ASCII
picture in the spirit of Figure 8's four snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DashboardSample:
    """One instant of a rollover."""

    timestamp: float
    old_version: int
    rolling_over: int
    new_version: int
    availability: float

    @property
    def total(self) -> int:
        return self.old_version + self.rolling_over + self.new_version


@dataclass
class Dashboard:
    """An append-only series of rollover samples."""

    samples: list[DashboardSample] = field(default_factory=list)

    def record(
        self,
        timestamp: float,
        old_version: int,
        rolling_over: int,
        new_version: int,
        availability: float,
    ) -> DashboardSample:
        sample = DashboardSample(
            timestamp, old_version, rolling_over, new_version, availability
        )
        self.samples.append(sample)
        return sample

    @property
    def duration(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        return self.samples[-1].timestamp - self.samples[0].timestamp

    @property
    def min_availability(self) -> float:
        if not self.samples:
            return 1.0
        return min(sample.availability for sample in self.samples)

    def mean_availability(self) -> float:
        """Time-weighted average availability across the rollover."""
        if len(self.samples) < 2:
            return 1.0 if not self.samples else self.samples[0].availability
        weighted = 0.0
        span = 0.0
        for before, after in zip(self.samples, self.samples[1:]):
            dt = after.timestamp - before.timestamp
            weighted += before.availability * dt
            span += dt
        return weighted / span if span else self.samples[-1].availability


def render_dashboard(
    dashboard: Dashboard, width: int = 60, max_rows: int = 12
) -> str:
    """ASCII rendering: one bar per sample, split old/rolling/new.

    ``#`` = old version, ``~`` = rolling over, ``=`` = new version —
    mirroring the three shades of Figure 8.
    """
    if not dashboard.samples:
        return "(no samples)"
    samples = dashboard.samples
    if len(samples) > max_rows:
        step = (len(samples) - 1) / (max_rows - 1)
        samples = [samples[round(i * step)] for i in range(max_rows)]
    t0 = samples[0].timestamp
    lines = [
        f"{'t (s)':>10}  {'old':>5} {'roll':>5} {'new':>5}  {'avail':>6}  bar",
    ]
    for sample in samples:
        total = max(1, sample.total)
        n_old = round(width * sample.old_version / total)
        n_roll = round(width * sample.rolling_over / total)
        n_new = width - n_old - n_roll
        bar = "#" * n_old + "~" * n_roll + "=" * max(0, n_new)
        lines.append(
            f"{sample.timestamp - t0:>10.1f}  {sample.old_version:>5} "
            f"{sample.rolling_over:>5} {sample.new_version:>5}  "
            f"{sample.availability:>6.1%}  |{bar[:width]}|"
        )
    return "\n".join(lines)
