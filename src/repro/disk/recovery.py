"""Disk recovery: rebuild a leaf's heap state from the legacy backup.

This is the slow path the paper is escaping: every row is read in disk
format and *translated* into the in-memory format (columnarized,
compressed, serialized into row block columns).  The translation runs
through exactly the same ``Table.add_row`` / ``RowBlock.from_rows`` code
as live ingestion, so its cost asymmetry against the shared-memory
restore is real in this implementation, not simulated.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.columnstore.leafmap import LeafMap
from repro.disk.backup import DiskBackup
from repro.disk.format import read_table_chunks
from repro.disk.shmformat import ShmSnapshot, read_table_snapshot
from repro.errors import CorruptionError, RecoveryError, SnapshotStaleError
from repro.types import TIME_COLUMN, ColumnValue


def recover_table_rows(
    backup: DiskBackup, table_name: str
) -> Iterator[dict[str, ColumnValue]]:
    """Yield a table's surviving rows (expiry watermark applied)."""
    path = backup.table_file(table_name)
    if not path.exists():
        return
    cutoff = backup.expire_cutoff(table_name)
    with open(path, "rb") as fh:
        for chunk_rows in read_table_chunks(fh):
            for row in chunk_rows:
                if row.get(TIME_COLUMN, 0) >= cutoff:
                    yield row


def iter_snapshot_tables(backup: DiskBackup) -> Iterator[tuple[str, ShmSnapshot]]:
    """Yield ``(table_name, snapshot)`` for every backed-up table, or raise.

    This is the snapshot tier's validity gate: each table's snapshot must
    exist, carry the generation the manifest vouches for, and decode
    cleanly (CRC, layout version, name match).  Any failure raises —
    :class:`SnapshotStaleError` for generation/missing-file problems,
    :class:`CorruptionError`/:class:`LayoutVersionError` for torn or
    incompatible files — and the caller routes the whole leaf down to
    legacy replay.  Partial trust is deliberately impossible: mixing
    tiers within one leaf would make the recovered-state provenance
    unauditable.
    """
    for table_name in backup.table_names:
        expected = backup.snapshot_generation(table_name)
        if expected <= 0 or expected != backup.sync_generation(table_name):
            raise SnapshotStaleError(
                f"table '{table_name}': snapshot generation {expected} does not "
                f"match sync generation {backup.sync_generation(table_name)}"
            )
        path = backup.snapshot_path(table_name)
        if not path.exists():
            raise SnapshotStaleError(f"table '{table_name}': snapshot file missing")
        snap = read_table_snapshot(path)
        if snap.generation != expected:
            raise SnapshotStaleError(
                f"table '{table_name}': snapshot file carries generation "
                f"{snap.generation}; manifest expects {expected}"
            )
        if snap.table_name != table_name:
            raise CorruptionError(
                f"snapshot file for '{table_name}' decodes as table "
                f"'{snap.table_name}'"
            )
        yield table_name, snap


def recover_leafmap_snapshots(
    backup: DiskBackup,
    leafmap: LeafMap,
    progress: Callable[[str, int], None] | None = None,
) -> int:
    """Rebuild every table from its shm-format snapshot; returns row count.

    The fast disk tier: each table is a file read plus bulk
    ``RowBlock.unpack`` — no row-by-row translation.  Watermarks are
    restored from the snapshot and the manifest expiry cutoff is
    re-applied ("any needed deletions are made after recovery"), so the
    result is indistinguishable from a legacy replay of the same state.
    """
    if len(leafmap):
        raise RecoveryError("disk recovery requires an empty leaf map")
    total = 0
    for table_name, snap in iter_snapshot_tables(backup):
        table = leafmap.create_table(table_name)
        table.replace_blocks(snap.blocks)
        table.total_rows_ingested = snap.rows_ingested
        table.total_rows_expired = snap.rows_expired
        cutoff = backup.expire_cutoff(table_name)
        if cutoff:
            table.expire_before(cutoff)
        total += table.row_count
        if progress is not None:
            progress(table_name, table.row_count)
    return total


def recover_leafmap(
    backup: DiskBackup,
    leafmap: LeafMap,
    progress: Callable[[str, int], None] | None = None,
) -> int:
    """Rebuild every backed-up table into ``leafmap``; returns row count.

    ``progress`` (if given) is called as ``progress(table_name, rows)``
    after each table completes, which is how a restarting leaf reports
    its gradually-increasing data coverage to the aggregators.
    """
    if len(leafmap):
        raise RecoveryError("disk recovery requires an empty leaf map")
    total = 0
    for table_name in backup.table_names:
        table = leafmap.create_table(table_name)
        count = table.add_rows(recover_table_rows(backup, table_name))
        table.seal_buffer()
        # Restore the backup watermarks so future incremental syncs line up.
        table.total_rows_ingested = backup.synced_rows(table_name)
        table.total_rows_expired = backup.synced_rows(table_name) - count
        total += count
        if progress is not None:
            progress(table_name, count)
    return total
