"""Disk recovery: rebuild a leaf's heap state from the legacy backup.

This is the slow path the paper is escaping: every row is read in disk
format and *translated* into the in-memory format (columnarized,
compressed, serialized into row block columns).  The translation runs
through exactly the same ``Table.add_row`` / ``RowBlock.from_rows`` code
as live ingestion, so its cost asymmetry against the shared-memory
restore is real in this implementation, not simulated.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.columnstore.leafmap import LeafMap
from repro.disk.backup import DiskBackup
from repro.disk.format import read_table_chunks
from repro.errors import RecoveryError
from repro.types import TIME_COLUMN, ColumnValue


def recover_table_rows(
    backup: DiskBackup, table_name: str
) -> Iterator[dict[str, ColumnValue]]:
    """Yield a table's surviving rows (expiry watermark applied)."""
    path = backup.table_file(table_name)
    if not path.exists():
        return
    cutoff = backup.expire_cutoff(table_name)
    with open(path, "rb") as fh:
        for chunk_rows in read_table_chunks(fh):
            for row in chunk_rows:
                if row.get(TIME_COLUMN, 0) >= cutoff:
                    yield row


def recover_leafmap(
    backup: DiskBackup,
    leafmap: LeafMap,
    progress: Callable[[str, int], None] | None = None,
) -> int:
    """Rebuild every backed-up table into ``leafmap``; returns row count.

    ``progress`` (if given) is called as ``progress(table_name, rows)``
    after each table completes, which is how a restarting leaf reports
    its gradually-increasing data coverage to the aggregators.
    """
    if len(leafmap):
        raise RecoveryError("disk recovery requires an empty leaf map")
    total = 0
    for table_name in backup.table_names:
        table = leafmap.create_table(table_name)
        count = table.add_rows(recover_table_rows(backup, table_name))
        table.seal_buffer()
        # Restore the backup watermarks so future incremental syncs line up.
        table.total_rows_ingested = backup.synced_rows(table_name)
        table.total_rows_expired = backup.synced_rows(table_name) - count
        total += count
        if progress is not None:
            progress(table_name, count)
    return total
