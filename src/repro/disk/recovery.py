"""Disk recovery: rebuild a leaf's heap state from the legacy backup.

This is the slow path the paper is escaping: every row is read in disk
format and *translated* into the in-memory format (columnarized,
compressed, serialized into row block columns).  The translation runs
through exactly the same ``Table.add_row`` / ``RowBlock.from_rows`` code
as live ingestion, so its cost asymmetry against the shared-memory
restore is real in this implementation, not simulated.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.columnstore.leafmap import LeafMap
from repro.disk.backup import DiskBackup
from repro.disk.format import read_table_chunks
from repro.disk.shmformat import ShmSnapshot, read_table_snapshot
from repro.errors import CorruptionError, RecoveryError, SnapshotStaleError
from repro.types import TIME_COLUMN, ColumnValue


def recover_table_rows(
    backup: DiskBackup, table_name: str
) -> Iterator[dict[str, ColumnValue]]:
    """Yield a table's surviving rows (expiry watermark applied).

    When the manifest carries the live table's expired-row count, the
    expiry is re-applied by *count*: the trailing ``synced_rows -
    rows_expired`` log rows survive, which reproduces the live table's
    block-granular expiry exactly — including rows below the cutoff
    that the live table kept inside a straddling block.  Manifests from
    before the count was tracked fall back to filtering rows by the
    timestamp cutoff.
    """
    path = backup.table_file(table_name)
    if not path.exists():
        return
    rows_expired = backup.rows_expired(table_name)
    if rows_expired is not None:
        keep = max(0, backup.synced_rows(table_name) - rows_expired)
        if keep == 0:
            return
        tail: list[dict[str, ColumnValue]] = []
        with open(path, "rb") as fh:
            for chunk_rows in read_table_chunks(fh):
                tail.extend(chunk_rows)
                if len(tail) > keep:
                    del tail[: len(tail) - keep]
        # A deletion intent recorded but never run live is made here,
        # on top of the count trim, exactly as the paper's Figure 5
        # caption requires.
        intent = backup.unapplied_expire_cutoff(table_name)
        for row in tail:
            if row.get(TIME_COLUMN, 0) >= intent:
                yield row
        return
    cutoff = backup.expire_cutoff(table_name)
    with open(path, "rb") as fh:
        for chunk_rows in read_table_chunks(fh):
            for row in chunk_rows:
                if row.get(TIME_COLUMN, 0) >= cutoff:
                    yield row


def materialize_chain(backup: DiskBackup, table_name: str) -> ShmSnapshot:
    """Fold a table's snapshot chain (base + deltas) into one snapshot.

    Every link is validated before its blocks are trusted: the chain must
    open with a base and continue with strictly newer delta generations,
    the tip must carry the manifest's current sync generation, each
    referenced file must exist, decode cleanly, agree with its link on
    generation / kind / block count / table name, and every dropped
    sequence number must name a block the chain actually holds.  Any
    failure raises — :class:`SnapshotStaleError` for generation or
    missing-file problems, :class:`CorruptionError` /
    :class:`LayoutVersionError` for torn, inconsistent, or incompatible
    content — and the caller routes the whole leaf down to legacy
    replay.
    """
    expected = backup.snapshot_generation(table_name)
    if expected <= 0 or expected != backup.sync_generation(table_name):
        raise SnapshotStaleError(
            f"table '{table_name}': snapshot generation {expected} does not "
            f"match sync generation {backup.sync_generation(table_name)}"
        )
    chain = backup.snapshot_chain(table_name)
    if not chain:
        raise SnapshotStaleError(f"table '{table_name}': no snapshot chain")
    if chain[-1].get("gen") != expected:
        raise SnapshotStaleError(
            f"table '{table_name}': chain tip generation "
            f"{chain[-1].get('gen')}; manifest expects {expected}"
        )
    live: dict[int, "object"] = {}
    prev_gen = 0
    tip: ShmSnapshot | None = None
    for index, link in enumerate(chain):
        kind = link.get("kind")
        if (index == 0) != (kind == "base"):
            raise CorruptionError(
                f"table '{table_name}': chain link {index} has kind "
                f"'{kind}' out of position"
            )
        gen = link.get("gen")
        if not isinstance(gen, int) or gen <= prev_gen:
            raise CorruptionError(
                f"table '{table_name}': chain generations not strictly "
                f"increasing at link {index}"
            )
        prev_gen = gen
        for seq in link.get("dropped", ()):
            if seq not in live:
                raise CorruptionError(
                    f"table '{table_name}': chain link {index} drops "
                    f"unknown block sequence {seq}"
                )
            del live[seq]
        filename = link.get("file")
        if filename is None:
            if kind == "base" or link.get("blocks"):
                raise CorruptionError(
                    f"table '{table_name}': chain link {index} declares "
                    "blocks but references no file"
                )
            continue
        path = backup.snapshot_dir / filename
        if not path.exists():
            raise SnapshotStaleError(
                f"table '{table_name}': chain file '{filename}' missing"
            )
        snap = read_table_snapshot(path)
        if snap.generation != gen:
            raise SnapshotStaleError(
                f"table '{table_name}': chain file '{filename}' carries "
                f"generation {snap.generation}; chain link says {gen}"
            )
        if snap.table_name != table_name:
            raise CorruptionError(
                f"snapshot file for '{table_name}' decodes as table "
                f"'{snap.table_name}'"
            )
        if snap.is_delta != (kind == "delta"):
            raise CorruptionError(
                f"table '{table_name}': chain file '{filename}' is "
                f"{'a delta' if snap.is_delta else 'a base'} but its link "
                f"says kind '{kind}'"
            )
        declared = link.get("blocks")
        if declared is not None and declared != len(snap.blocks):
            raise CorruptionError(
                f"table '{table_name}': chain file '{filename}' holds "
                f"{len(snap.blocks)} blocks; chain link says {declared}"
            )
        start = link.get("start_seq", 0)
        for offset, block in enumerate(snap.blocks):
            seq = start + offset
            if seq in live:
                raise CorruptionError(
                    f"table '{table_name}': chain reuses block sequence {seq}"
                )
            live[seq] = block
        tip = snap
    last = chain[-1]
    rows_ingested = last.get("rows_ingested")
    rows_expired = last.get("rows_expired")
    if rows_ingested is None or rows_expired is None:
        # Legacy single-link chains synthesized from a bare
        # ``snapshot_gen`` leave the watermarks to the file envelope.
        if tip is None:
            raise CorruptionError(
                f"table '{table_name}': chain carries no watermarks"
            )
        rows_ingested = tip.rows_ingested
        rows_expired = tip.rows_expired
    return ShmSnapshot(
        table_name=table_name,
        blocks=[live[seq] for seq in sorted(live)],
        generation=expected,
        rows_ingested=rows_ingested,
        rows_expired=rows_expired,
    )


def iter_snapshot_tables(backup: DiskBackup) -> Iterator[tuple[str, ShmSnapshot]]:
    """Yield ``(table_name, snapshot)`` for every backed-up table, or raise.

    This is the snapshot tier's validity gate: each table's chain —
    a single base for pre-incremental backups, base plus deltas
    otherwise — is materialized by :func:`materialize_chain`, which
    validates every link before its blocks are trusted.  Any failure
    raises and the caller routes the whole leaf down to legacy replay.
    Partial trust is deliberately impossible: mixing tiers within one
    leaf would make the recovered-state provenance unauditable.
    """
    for table_name in backup.table_names:
        yield table_name, materialize_chain(backup, table_name)


def recover_leafmap_snapshots(
    backup: DiskBackup,
    leafmap: LeafMap,
    progress: Callable[[str, int], None] | None = None,
) -> int:
    """Rebuild every table from its shm-format snapshot; returns row count.

    The fast disk tier: each table is a file read plus bulk
    ``RowBlock.unpack`` — no row-by-row translation.  Watermarks are
    restored from the snapshot and the manifest expiry cutoff is
    re-applied ("any needed deletions are made after recovery"), so the
    result is indistinguishable from a legacy replay of the same state.
    """
    if len(leafmap):
        raise RecoveryError("disk recovery requires an empty leaf map")
    total = 0
    for table_name, snap in iter_snapshot_tables(backup):
        table = leafmap.create_table(table_name)
        table.replace_blocks(snap.blocks)
        table.total_rows_ingested = snap.rows_ingested
        table.total_rows_expired = snap.rows_expired
        cutoff = backup.pending_expire_cutoff(table_name)
        if cutoff:
            table.expire_before(cutoff)
        total += table.row_count
        if progress is not None:
            progress(table_name, table.row_count)
    return total


def recover_leafmap(
    backup: DiskBackup,
    leafmap: LeafMap,
    progress: Callable[[str, int], None] | None = None,
) -> int:
    """Rebuild every backed-up table into ``leafmap``; returns row count.

    ``progress`` (if given) is called as ``progress(table_name, rows)``
    after each table completes, which is how a restarting leaf reports
    its gradually-increasing data coverage to the aggregators.
    """
    if len(leafmap):
        raise RecoveryError("disk recovery requires an empty leaf map")
    total = 0
    for table_name in backup.table_names:
        table = leafmap.create_table(table_name)
        count = table.add_rows(recover_table_rows(backup, table_name))
        table.seal_buffer()
        # Restore the backup watermarks so future incremental syncs line up.
        table.total_rows_ingested = backup.synced_rows(table_name)
        table.total_rows_expired = backup.synced_rows(table_name) - count
        total += count
        if progress is not None:
            progress(table_name, count)
    return total
