"""The leaf's disk backup manager.

During normal operation a leaf synchronizes new rows to disk at sync
points (asynchronously in production; callers here decide when).  A clean
shutdown "finishes any pending synchronization with the data on disk"
(paper, Section 4.1), so a subsequent disk recovery sees everything; a
crash may lose the rows added after the last sync point, which Scuba
accepts.

On-disk state, inside one directory per leaf::

    manifest.json           per-table watermarks (rows synced, expiry cutoff,
                            sync/snapshot generations)
    <table>.scuba           legacy row-format file (append-only chunks)
    snapshots/<table>.shmdisk   shm-format snapshot (Section 6 fast tier)

The expiry cutoff is a manifest watermark rather than a file rewrite:
recovery replays the chunks and drops rows whose timestamp is below the
cutoff, mirroring how Scuba re-applies deletions after recovery
("Any needed deletions are made after recovery", Figure 5 caption).

The snapshot side implements the paper's Section 6 plan: at a sync point
whose table has no buffered rows, the table's sealed blocks are also
written in the shm format, stamped with the sync *generation*.  A
snapshot is trusted for recovery only when its generation equals the
manifest's sync generation — any later sync (or a torn snapshot write,
which leaves the previous generation on disk) makes it stale, and the
recovery ladder routes that table down to legacy replay.

Snapshots are *incremental*: instead of rewriting the whole table at
every generation, a sync point appends a **delta** file carrying only
the blocks sealed since the previous generation, plus a manifest *chain
link* recording which earlier chain blocks expired.  The manifest chain
(base + ordered deltas, each keyed to the generation it was taken at) is
what recovery materializes; each block ever written into the chain gets
a per-table monotone sequence number so deltas can name expired blocks
durably.  When the chain grows past ``max_chain_links`` or expiry churn
crosses ``compact_churn``, the next snapshot *compacts*: it folds the
chain back into a single fresh base and deletes the obsolete delta
files.  A sync point whose generation already matches the chain tip
writes nothing at all.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.columnstore.leafmap import LeafMap
from repro.columnstore.rowblock import RowBlock
from repro.columnstore.table import Table
from repro.disk.format import write_chunk, write_file_header
from repro.disk.shmformat import (
    SNAPSHOT_FLAG_DELTA,
    delta_filename,
    fsync_directory,
    snapshot_filename,
    write_table_shm_format,
)
from repro.errors import RecoveryError

_MANIFEST = "manifest.json"
_SNAPSHOT_DIR = "snapshots"

#: Chain-growth bound: a snapshot chain longer than this is folded back
#: into a single base at the next snapshot point (recovery cost stays
#: O(links) file opens, so the bound caps the worst-case restart read).
DEFAULT_MAX_CHAIN_LINKS = 8
#: Churn bound: once this fraction of all blocks ever appended to the
#: chain has expired out of it, the dead bytes on disk outweigh the
#: append savings and the next snapshot compacts.
DEFAULT_COMPACT_CHURN = 0.5


@dataclass
class SnapshotStats:
    """Cumulative write-path accounting for one backup's snapshot side.

    ``write_amplification`` is (bytes written per sync ÷ live sealed
    bytes), summed over every snapshot point — 1.0 is the full-rewrite
    floor, an append-mostly workload under incremental snapshots sits
    far below it.
    """

    snapshot_points: int = 0
    bases_written: int = 0
    deltas_written: int = 0
    manifest_only_links: int = 0
    skipped_unchanged: int = 0
    compactions: int = 0
    snapshot_bytes_written: int = 0
    live_bytes_at_sync: int = 0

    @property
    def write_amplification(self) -> float | None:
        if self.live_bytes_at_sync == 0:
            return None
        return self.snapshot_bytes_written / self.live_bytes_at_sync


def _table_filename(name: str) -> str:
    """A filesystem-safe file name for a table (hex-escapes odd chars)."""
    safe = "".join(
        ch if ch.isalnum() or ch in "-_." else f"%{ord(ch):02x}" for ch in name
    )
    return f"{safe}.scuba"


class DiskBackup:
    """Manages the legacy-format backup (and shm-format snapshot chains)
    of one leaf's tables.

    ``incremental=False`` forces the pre-chain behavior — every snapshot
    point rewrites the table as a single base — which is the benchmark
    baseline (E17) and an escape hatch, not a recommended mode.
    """

    def __init__(
        self,
        directory: str | Path,
        snapshots: bool = True,
        incremental: bool = True,
        max_chain_links: int = DEFAULT_MAX_CHAIN_LINKS,
        compact_churn: float = DEFAULT_COMPACT_CHURN,
    ) -> None:
        if max_chain_links < 1:
            raise ValueError("max_chain_links must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.snapshots_enabled = snapshots
        self.incremental = incremental
        self.max_chain_links = max_chain_links
        self.compact_churn = compact_churn
        self.stats = SnapshotStats()
        self._manifest: dict[str, dict] = {}
        #: Per-table map of live block uid -> chain sequence number, for
        #: blocks this process knows to be in the persisted chain.  Block
        #: uids are process-unique, so the map cannot survive a restart:
        #: a fresh manager writes one full base, then extends it.
        self._chain_uids: dict[str, dict[int, int]] = {}
        self._load_manifest()

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------

    def _manifest_path(self) -> Path:
        return self.directory / _MANIFEST

    def _load_manifest(self) -> None:
        path = self._manifest_path()
        if path.exists():
            try:
                self._manifest = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise RecoveryError(f"unreadable backup manifest: {exc}") from exc
            # Manifests written before the snapshot side existed lack the
            # generation keys; zero means "no trusted snapshot".
            for entry in self._manifest.values():
                entry.setdefault("sync_gen", 0)
                entry.setdefault("snapshot_gen", 0)

    def _save_manifest(self) -> None:
        tmp = self._manifest_path().with_suffix(".tmp")
        # fsync before the rename: the snapshot generation watermark must
        # be durable, or a crash could leave a manifest that trusts a
        # snapshot which no longer matches it.
        with open(tmp, "w") as fh:
            fh.write(json.dumps(self._manifest, indent=1, sort_keys=True))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._manifest_path())
        # And the rename itself must be durable: without the directory
        # fsync a crash can roll back to the previous manifest while the
        # files it described are gone (or vice versa).
        fsync_directory(self.directory)

    def reload(self) -> None:
        """Reread the manifest from disk, dropping in-memory state.

        Needed when another process advanced this leaf's backup — e.g. a
        forked restart worker whose shutdown synced tables and bumped
        generations that this process's cached manifest predates.  The
        uid->sequence chain map is dropped too: it described blocks of
        this process's tables against a chain another process has since
        rewritten, so the next snapshot starts over with a fresh base.
        """
        self._manifest = {}
        self._chain_uids = {}
        self._load_manifest()

    def _entry(self, table_name: str) -> dict:
        return self._manifest.setdefault(
            table_name,
            {"synced_rows": 0, "expire_before": 0, "sync_gen": 0, "snapshot_gen": 0},
        )

    def table_file(self, table_name: str) -> Path:
        return self.directory / _table_filename(table_name)

    @property
    def snapshot_dir(self) -> Path:
        return self.directory / _SNAPSHOT_DIR

    def snapshot_path(self, table_name: str) -> Path:
        return self.snapshot_dir / snapshot_filename(table_name)

    @property
    def table_names(self) -> list[str]:
        return list(self._manifest)

    def synced_rows(self, table_name: str) -> int:
        return self._manifest.get(table_name, {}).get("synced_rows", 0)

    def expire_cutoff(self, table_name: str) -> int:
        return self._manifest.get(table_name, {}).get("expire_before", 0)

    def rows_expired(self, table_name: str) -> int | None:
        """The live table's expired-row count as of the last record/sync.

        ``None`` for manifests written before the count was tracked;
        legacy replay then falls back to filtering rows by the timestamp
        cutoff instead of trimming by count.
        """
        return self._manifest.get(table_name, {}).get("rows_expired")

    def unapplied_expire_cutoff(self, table_name: str) -> int:
        """A recorded cutoff the live table has not applied (pure intent).

        Recorded via :meth:`record_expiry` *without* a row count, these
        are deletion intents in the paper's sense — "any needed
        deletions are made after recovery" — and every recovery route
        must make them, no matter how fresh its source state is.
        """
        entry = self._manifest.get(table_name, {})
        cutoff = entry.get("expire_before", 0)
        if cutoff > entry.get("expire_applied", 0):
            return cutoff
        return 0

    def pending_expire_cutoff(self, table_name: str) -> int:
        """The expiry cutoff snapshot recovery still needs to re-apply.

        An intent-only cutoff (never applied live) is always pending.
        An applied cutoff is pending only when it was recorded at or
        after the generation the snapshot chain was taken at — i.e. the
        snapshot predates the live expiry run.  A cutoff applied
        *before* the snapshot generation is already reflected in the
        snapshot's blocks; re-applying it would over-expire rows that
        were still buffered when the cutoff ran and only sealed (and
        snapshotted) afterwards.  Manifests without an ``expire_gen``
        predate the distinction and keep the always-re-apply behavior.
        """
        entry = self._manifest.get(table_name)
        if not entry:
            return 0
        cutoff = entry.get("expire_before", 0)
        if not cutoff:
            return 0
        if cutoff > entry.get("expire_applied", 0):
            return cutoff
        gen = entry.get("expire_gen")
        if gen is None or gen >= entry.get("snapshot_gen", 0):
            return cutoff
        return 0

    def sync_generation(self, table_name: str) -> int:
        """Monotone counter bumped whenever a table's synced state changes."""
        return self._manifest.get(table_name, {}).get("sync_gen", 0)

    def snapshot_generation(self, table_name: str) -> int:
        """The sync generation the table's snapshot was taken at (0 = none)."""
        return self._manifest.get(table_name, {}).get("snapshot_gen", 0)

    def snapshot_chain(self, table_name: str) -> list[dict]:
        """The table's snapshot chain links (base first), possibly empty.

        Manifests written before chains existed carry a bare
        ``snapshot_gen``; those synthesize a single-link chain over the
        legacy base file, with per-link metadata left ``None`` so the
        chain reader falls back to the file envelope's own values.
        """
        entry = self._manifest.get(table_name)
        if entry is None:
            return []
        chain = entry.get("chain")
        if chain is not None:
            return chain
        gen = entry.get("snapshot_gen", 0)
        if gen <= 0:
            return []
        return [
            {
                "gen": gen,
                "file": snapshot_filename(table_name),
                "kind": "base",
                "start_seq": 0,
                "blocks": None,
                "dropped": [],
                "rows_ingested": None,
                "rows_expired": None,
            }
        ]

    def chain_files(self, table_name: str) -> list[Path]:
        """Paths of every file the table's chain references, base first."""
        return [
            self.snapshot_dir / link["file"]
            for link in self.snapshot_chain(table_name)
            if link.get("file") is not None
        ]

    def snapshot_valid(self, table_name: str) -> bool:
        """Whether the table's snapshot chain may be trusted for recovery."""
        gen = self.snapshot_generation(table_name)
        if gen <= 0 or gen != self.sync_generation(table_name):
            return False
        chain = self.snapshot_chain(table_name)
        if not chain or chain[-1].get("gen") != gen:
            return False
        return all(path.exists() for path in self.chain_files(table_name))

    def snapshots_ready(self) -> bool:
        """Whether the snapshot recovery tier covers *every* backed-up table."""
        if not self._manifest:
            return False
        return all(self.snapshot_valid(name) for name in self._manifest)

    # ------------------------------------------------------------------
    # Sync points
    # ------------------------------------------------------------------

    def sync_table(self, table: Table, snapshot: bool | None = None) -> int:
        """Append every not-yet-synced row of ``table`` as one chunk.

        Returns the number of rows written.  Uses the table's monotone
        ingest/expiry counters to find the delta since the last sync, so
        repeated calls are idempotent when nothing changed.

        When snapshots are enabled (``snapshot=None`` defers to the
        backup-wide setting) and the table has no buffered rows, the sync
        point also refreshes the table's shm-format snapshot so the next
        restart can take the fast disk tier.  A sync with buffered rows
        leaves the snapshot stale on purpose: the snapshot holds sealed
        blocks only, so trusting it would drop the buffered rows that the
        legacy chunks do contain.
        """
        if snapshot is None:
            snapshot = self.snapshots_enabled
        entry = self._entry(table.name)
        watermark = entry["synced_rows"]
        expired = table.total_rows_expired
        total = table.total_rows_ingested
        start = max(watermark, expired)
        changed = False
        written = 0
        if start >= total:
            # Rows may have expired past the watermark without new data.
            if expired > watermark:
                entry["synced_rows"] = expired
                entry["sync_gen"] = entry.get("sync_gen", 0) + 1
                changed = True
        else:
            all_rows = table.to_rows()
            new_rows = all_rows[start - expired :]
            path = self.table_file(table.name)
            is_new = not path.exists()
            with open(path, "ab") as fh:
                if is_new:
                    write_file_header(fh)
                written = write_chunk(fh, new_rows)
                fh.flush()
                os.fsync(fh.fileno())
            entry["synced_rows"] = total
            entry["sync_gen"] = entry.get("sync_gen", 0) + 1
            changed = True
        # Keep the replay trim count in step with the live table.  The
        # count alone never bumps the sync generation or invalidates the
        # snapshot — it only tells legacy replay how many leading ingest
        # positions the live table had already dropped.
        known_expired = entry.get("rows_expired")
        if known_expired is None or expired > known_expired:
            entry["rows_expired"] = expired
            changed = True
        stale: list[Path] = []
        if snapshot and table.buffered_row_count == 0:
            if self.snapshot_valid(table.name):
                # The chain tip already carries this sync generation:
                # nothing changed, so a no-op sync point writes nothing.
                self.stats.skipped_unchanged += 1
            else:
                stale = self._write_snapshot(table, entry)
                changed = True
        if changed:
            self._save_manifest()
        # Obsolete chain files go only after the manifest stopped
        # referencing them; a crash in between leaves unreferenced files
        # (harmless), never a manifest that trusts a deleted one.
        for path in stale:
            path.unlink(missing_ok=True)
        return written

    # ------------------------------------------------------------------
    # Snapshot chain writes
    # ------------------------------------------------------------------

    def _write_snapshot(self, table: Table, entry: dict) -> list[Path]:
        """Advance the table's snapshot chain to the current generation.

        Appends a delta link when the chain can be extended (this
        process wrote the chain tip and the surviving blocks kept their
        order), otherwise — fresh manager, reordered blocks, chain too
        long, or churn past the compaction threshold — folds everything
        into a new base.  Files land (atomically, fsynced) *before* the
        manifest records their generation: a crash between the two
        leaves files whose generation the manifest does not vouch for,
        which the validity check routes down — never a trusted-but-wrong
        chain.  The caller saves the manifest and then unlinks the
        returned obsolete chain files.
        """
        gen = entry.get("sync_gen", 0)
        if gen == 0:
            # A table can reach a snapshot point without ever having had
            # chunk-worthy rows (empty table); give it a real generation.
            gen = 1
            entry["sync_gen"] = gen
        name = table.name
        blocks = table.blocks
        rows_ingested = table.total_rows_ingested - table.buffered_row_count
        rows_expired = table.total_rows_expired
        self.stats.snapshot_points += 1
        self.stats.live_bytes_at_sync += table.sealed_nbytes
        chain = entry.get("chain")
        known = self._chain_uids.get(name)
        appended: list[RowBlock] | None = None
        dropped: list[int] = []
        if (
            self.incremental
            and chain
            and known is not None
            and entry.get("snapshot_gen", 0) == chain[-1].get("gen")
        ):
            appended, dropped = self._chain_delta(blocks, known)
        if appended is not None and self._should_compact(
            entry, chain or [], appended, dropped
        ):
            self.stats.compactions += 1
            appended = None
        if appended is None:
            return self._write_base(
                name, entry, blocks, gen, rows_ingested, rows_expired
            )
        link = {
            "gen": gen,
            "file": None,
            "kind": "delta",
            "start_seq": entry.get("next_seq", 0),
            "blocks": len(appended),
            "dropped": dropped,
            "rows_ingested": rows_ingested,
            "rows_expired": rows_expired,
        }
        if appended:
            path = write_table_shm_format(
                self.snapshot_dir,
                name,
                appended,
                generation=gen,
                rows_ingested=rows_ingested,
                rows_expired=rows_expired,
                flags=SNAPSHOT_FLAG_DELTA,
                filename=delta_filename(name, gen),
            )
            link["file"] = path.name
            self.stats.deltas_written += 1
            self.stats.snapshot_bytes_written += path.stat().st_size
        else:
            # Pure-expiry generation: the drop list alone describes it.
            self.stats.manifest_only_links += 1
        assert known is not None
        for seq, block in enumerate(appended, start=link["start_seq"]):
            known[block.uid] = seq
        current = {block.uid for block in blocks}
        for uid in [uid for uid in known if uid not in current]:
            del known[uid]
        entry["next_seq"] = link["start_seq"] + len(appended)
        entry.setdefault("chain", []).append(link)
        entry["snapshot_gen"] = gen
        return []

    def _chain_delta(
        self, blocks: list[RowBlock], known: dict[int, int]
    ) -> tuple[list[RowBlock] | None, list[int]]:
        """Diff the table's blocks against the chain: (appended, dropped).

        Returns ``(None, [])`` when the chain cannot represent the
        table's current state as an append + drop — survivors reordered,
        or new blocks interleaved before surviving ones — in which case
        the caller rewrites a base.  (Tables only ever append sealed
        blocks and drop expired ones, so this is a defensive escape
        hatch, not an expected path.)
        """
        current = {block.uid for block in blocks}
        appended = [block for block in blocks if block.uid not in known]
        survivor_seqs = [known[b.uid] for b in blocks if b.uid in known]
        if survivor_seqs != sorted(survivor_seqs):
            return None, []
        tail = blocks[len(blocks) - len(appended) :] if appended else []
        if [b.uid for b in tail] != [b.uid for b in appended]:
            return None, []
        dropped = sorted(seq for uid, seq in known.items() if uid not in current)
        return appended, dropped

    def _should_compact(
        self,
        entry: dict,
        chain: list[dict],
        appended: list[RowBlock],
        dropped: list[int],
    ) -> bool:
        """Whether the next link should instead fold the chain."""
        if len(chain) + 1 > self.max_chain_links:
            return True
        total_seqs = entry.get("next_seq", 0) + len(appended)
        dropped_total = len(dropped) + sum(
            len(link.get("dropped", ())) for link in chain
        )
        return total_seqs > 0 and dropped_total / total_seqs > self.compact_churn

    def _write_base(
        self,
        name: str,
        entry: dict,
        blocks: list[RowBlock],
        gen: int,
        rows_ingested: int,
        rows_expired: int,
    ) -> list[Path]:
        """Write a fresh single-link base chain; returns obsolete files."""
        old_files = self.chain_files(name)
        path = write_table_shm_format(
            self.snapshot_dir,
            name,
            blocks,
            generation=gen,
            rows_ingested=rows_ingested,
            rows_expired=rows_expired,
        )
        self.stats.bases_written += 1
        self.stats.snapshot_bytes_written += path.stat().st_size
        entry["chain"] = [
            {
                "gen": gen,
                "file": path.name,
                "kind": "base",
                "start_seq": 0,
                "blocks": len(blocks),
                "dropped": [],
                "rows_ingested": rows_ingested,
                "rows_expired": rows_expired,
            }
        ]
        entry["next_seq"] = len(blocks)
        entry["snapshot_gen"] = gen
        self._chain_uids[name] = {
            block.uid: seq for seq, block in enumerate(blocks)
        }
        return [old for old in old_files if old != path]

    def write_snapshot(self, table: Table) -> Path:
        """Force-refresh one table's snapshot (tests / manual tooling)."""
        entry = self._entry(table.name)
        stale = self._write_snapshot(table, entry)
        self._save_manifest()
        for old in stale:
            old.unlink(missing_ok=True)
        return self.snapshot_path(table.name)

    def sync_leafmap(self, leafmap: LeafMap) -> int:
        """Sync every table; returns total rows written."""
        return sum(self.sync_table(table) for table in leafmap)

    def record_expiry(
        self,
        table_name: str,
        cutoff_time: int,
        rows_expired: int | None = None,
    ) -> None:
        """Advance a table's expiry watermark (never backwards).

        Does not invalidate the snapshot: a cutoff still pending against
        the snapshot generation is re-applied after snapshot recovery,
        exactly as it is after legacy replay.  Callers that just ran
        ``Table.expire_before`` pass the table's ``total_rows_expired``
        so legacy replay can trim by *count*, reproducing the live
        table's block-granular expiry exactly — including rows below the
        cutoff that survive inside a straddling block.
        """
        entry = self._entry(table_name)
        changed = False
        if cutoff_time > entry["expire_before"]:
            entry["expire_before"] = cutoff_time
            changed = True
        if rows_expired is not None:
            current = entry.get("rows_expired")
            if current is None or rows_expired > current:
                entry["rows_expired"] = rows_expired
                changed = True
            if cutoff_time > entry.get("expire_applied", 0):
                entry["expire_applied"] = cutoff_time
                changed = True
            if changed:
                # The live table just ran this cutoff, so the record is
                # pending against any snapshot taken at or before the
                # current sync generation — and folded into any later
                # one.
                entry["expire_gen"] = entry.get("sync_gen", 0)
        if changed:
            self._save_manifest()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def drop_table(self, table_name: str) -> None:
        chain = self.chain_files(table_name)
        snapshot = self.snapshot_path(table_name)
        self._manifest.pop(table_name, None)
        self._chain_uids.pop(table_name, None)
        self._save_manifest()
        path = self.table_file(table_name)
        if path.exists():
            path.unlink()
        for old in {snapshot, *chain}:
            old.unlink(missing_ok=True)

    def wipe(self) -> None:
        """Delete every backup file and the manifest (tests/teardown)."""
        for name in list(self._manifest):
            self.drop_table(name)
        if self.snapshot_dir.exists():
            for stray in self.snapshot_dir.iterdir():
                if stray.suffix in (".shmdisk", ".tmp"):
                    stray.unlink()
            try:
                self.snapshot_dir.rmdir()
            except OSError:
                pass
        if self._manifest_path().exists():
            self._manifest_path().unlink()
        self._manifest = {}
