"""The leaf's disk backup manager.

During normal operation a leaf synchronizes new rows to disk at sync
points (asynchronously in production; callers here decide when).  A clean
shutdown "finishes any pending synchronization with the data on disk"
(paper, Section 4.1), so a subsequent disk recovery sees everything; a
crash may lose the rows added after the last sync point, which Scuba
accepts.

On-disk state, inside one directory per leaf::

    manifest.json           per-table watermarks (rows synced, expiry cutoff,
                            sync/snapshot generations)
    <table>.scuba           legacy row-format file (append-only chunks)
    snapshots/<table>.shmdisk   shm-format snapshot (Section 6 fast tier)

The expiry cutoff is a manifest watermark rather than a file rewrite:
recovery replays the chunks and drops rows whose timestamp is below the
cutoff, mirroring how Scuba re-applies deletions after recovery
("Any needed deletions are made after recovery", Figure 5 caption).

The snapshot side implements the paper's Section 6 plan: at a sync point
whose table has no buffered rows, the table's sealed blocks are also
written as one shm-format file, stamped with the sync *generation*.  A
snapshot is trusted for recovery only when its generation equals the
manifest's sync generation — any later sync (or a torn snapshot write,
which leaves the previous generation on disk) makes it stale, and the
recovery ladder routes that table down to legacy replay.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.columnstore.leafmap import LeafMap
from repro.columnstore.table import Table
from repro.disk.format import write_chunk, write_file_header
from repro.disk.shmformat import snapshot_filename, write_table_shm_format
from repro.errors import RecoveryError

_MANIFEST = "manifest.json"
_SNAPSHOT_DIR = "snapshots"


def _table_filename(name: str) -> str:
    """A filesystem-safe file name for a table (hex-escapes odd chars)."""
    safe = "".join(
        ch if ch.isalnum() or ch in "-_." else f"%{ord(ch):02x}" for ch in name
    )
    return f"{safe}.scuba"


class DiskBackup:
    """Manages the legacy-format backup (and shm-format snapshots) of one
    leaf's tables."""

    def __init__(self, directory: str | Path, snapshots: bool = True) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.snapshots_enabled = snapshots
        self._manifest: dict[str, dict[str, int]] = {}
        self._load_manifest()

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------

    def _manifest_path(self) -> Path:
        return self.directory / _MANIFEST

    def _load_manifest(self) -> None:
        path = self._manifest_path()
        if path.exists():
            try:
                self._manifest = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise RecoveryError(f"unreadable backup manifest: {exc}") from exc
            # Manifests written before the snapshot side existed lack the
            # generation keys; zero means "no trusted snapshot".
            for entry in self._manifest.values():
                entry.setdefault("sync_gen", 0)
                entry.setdefault("snapshot_gen", 0)

    def _save_manifest(self) -> None:
        tmp = self._manifest_path().with_suffix(".tmp")
        # fsync before the rename: the snapshot generation watermark must
        # be durable, or a crash could leave a manifest that trusts a
        # snapshot which no longer matches it.
        with open(tmp, "w") as fh:
            fh.write(json.dumps(self._manifest, indent=1, sort_keys=True))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._manifest_path())

    def reload(self) -> None:
        """Reread the manifest from disk, dropping in-memory state.

        Needed when another process advanced this leaf's backup — e.g. a
        forked restart worker whose shutdown synced tables and bumped
        generations that this process's cached manifest predates.
        """
        self._manifest = {}
        self._load_manifest()

    def _entry(self, table_name: str) -> dict[str, int]:
        return self._manifest.setdefault(
            table_name,
            {"synced_rows": 0, "expire_before": 0, "sync_gen": 0, "snapshot_gen": 0},
        )

    def table_file(self, table_name: str) -> Path:
        return self.directory / _table_filename(table_name)

    @property
    def snapshot_dir(self) -> Path:
        return self.directory / _SNAPSHOT_DIR

    def snapshot_path(self, table_name: str) -> Path:
        return self.snapshot_dir / snapshot_filename(table_name)

    @property
    def table_names(self) -> list[str]:
        return list(self._manifest)

    def synced_rows(self, table_name: str) -> int:
        return self._manifest.get(table_name, {}).get("synced_rows", 0)

    def expire_cutoff(self, table_name: str) -> int:
        return self._manifest.get(table_name, {}).get("expire_before", 0)

    def sync_generation(self, table_name: str) -> int:
        """Monotone counter bumped whenever a table's synced state changes."""
        return self._manifest.get(table_name, {}).get("sync_gen", 0)

    def snapshot_generation(self, table_name: str) -> int:
        """The sync generation the table's snapshot was taken at (0 = none)."""
        return self._manifest.get(table_name, {}).get("snapshot_gen", 0)

    def snapshot_valid(self, table_name: str) -> bool:
        """Whether the table's snapshot may be trusted for recovery."""
        gen = self.snapshot_generation(table_name)
        return (
            gen > 0
            and gen == self.sync_generation(table_name)
            and self.snapshot_path(table_name).exists()
        )

    def snapshots_ready(self) -> bool:
        """Whether the snapshot recovery tier covers *every* backed-up table."""
        if not self._manifest:
            return False
        return all(self.snapshot_valid(name) for name in self._manifest)

    # ------------------------------------------------------------------
    # Sync points
    # ------------------------------------------------------------------

    def sync_table(self, table: Table, snapshot: bool | None = None) -> int:
        """Append every not-yet-synced row of ``table`` as one chunk.

        Returns the number of rows written.  Uses the table's monotone
        ingest/expiry counters to find the delta since the last sync, so
        repeated calls are idempotent when nothing changed.

        When snapshots are enabled (``snapshot=None`` defers to the
        backup-wide setting) and the table has no buffered rows, the sync
        point also refreshes the table's shm-format snapshot so the next
        restart can take the fast disk tier.  A sync with buffered rows
        leaves the snapshot stale on purpose: the snapshot holds sealed
        blocks only, so trusting it would drop the buffered rows that the
        legacy chunks do contain.
        """
        if snapshot is None:
            snapshot = self.snapshots_enabled
        entry = self._entry(table.name)
        watermark = entry["synced_rows"]
        expired = table.total_rows_expired
        total = table.total_rows_ingested
        start = max(watermark, expired)
        changed = False
        written = 0
        if start >= total:
            # Rows may have expired past the watermark without new data.
            if expired > watermark:
                entry["synced_rows"] = expired
                entry["sync_gen"] = entry.get("sync_gen", 0) + 1
                changed = True
        else:
            all_rows = table.to_rows()
            new_rows = all_rows[start - expired :]
            path = self.table_file(table.name)
            is_new = not path.exists()
            with open(path, "ab") as fh:
                if is_new:
                    write_file_header(fh)
                written = write_chunk(fh, new_rows)
                fh.flush()
                os.fsync(fh.fileno())
            entry["synced_rows"] = total
            entry["sync_gen"] = entry.get("sync_gen", 0) + 1
            changed = True
        if (
            snapshot
            and table.buffered_row_count == 0
            and not self.snapshot_valid(table.name)
        ):
            self._write_snapshot(table, entry)
            changed = True
        if changed:
            self._save_manifest()
        return written

    def _write_snapshot(self, table: Table, entry: dict[str, int]) -> Path:
        """Write the table's shm-format snapshot at the current generation.

        The snapshot file lands (atomically, fsynced) *before* the
        manifest records its generation: a crash between the two leaves a
        file whose generation the manifest does not vouch for, which the
        validity check routes down — never a trusted-but-wrong snapshot.
        The caller saves the manifest.
        """
        gen = entry.get("sync_gen", 0)
        if gen == 0:
            # A table can reach a snapshot point without ever having had
            # chunk-worthy rows (empty table); give it a real generation.
            gen = 1
            entry["sync_gen"] = gen
        path = write_table_shm_format(
            self.snapshot_dir,
            table.name,
            table.blocks,
            generation=gen,
            rows_ingested=table.total_rows_ingested - table.buffered_row_count,
            rows_expired=table.total_rows_expired,
        )
        entry["snapshot_gen"] = gen
        return path

    def write_snapshot(self, table: Table) -> Path:
        """Force-refresh one table's snapshot (tests / manual tooling)."""
        entry = self._entry(table.name)
        path = self._write_snapshot(table, entry)
        self._save_manifest()
        return path

    def sync_leafmap(self, leafmap: LeafMap) -> int:
        """Sync every table; returns total rows written."""
        return sum(self.sync_table(table) for table in leafmap)

    def record_expiry(self, table_name: str, cutoff_time: int) -> None:
        """Advance a table's expiry watermark (never backwards).

        Does not invalidate the snapshot: the cutoff is re-applied after
        snapshot recovery, exactly as it is after legacy replay.
        """
        entry = self._entry(table_name)
        if cutoff_time > entry["expire_before"]:
            entry["expire_before"] = cutoff_time
            self._save_manifest()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def drop_table(self, table_name: str) -> None:
        snapshot = self.snapshot_path(table_name)
        self._manifest.pop(table_name, None)
        self._save_manifest()
        path = self.table_file(table_name)
        if path.exists():
            path.unlink()
        if snapshot.exists():
            snapshot.unlink()

    def wipe(self) -> None:
        """Delete every backup file and the manifest (tests/teardown)."""
        for name in list(self._manifest):
            self.drop_table(name)
        if self.snapshot_dir.exists():
            for stray in self.snapshot_dir.iterdir():
                if stray.suffix in (".shmdisk", ".tmp"):
                    stray.unlink()
            try:
                self.snapshot_dir.rmdir()
            except OSError:
                pass
        if self._manifest_path().exists():
            self._manifest_path().unlink()
        self._manifest = {}
