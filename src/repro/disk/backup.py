"""The leaf's disk backup manager.

During normal operation a leaf synchronizes new rows to disk at sync
points (asynchronously in production; callers here decide when).  A clean
shutdown "finishes any pending synchronization with the data on disk"
(paper, Section 4.1), so a subsequent disk recovery sees everything; a
crash may lose the rows added after the last sync point, which Scuba
accepts.

On-disk state, inside one directory per leaf::

    manifest.json           per-table watermarks (rows synced, expiry cutoff)
    <table>.scuba           legacy row-format file (append-only chunks)

The expiry cutoff is a manifest watermark rather than a file rewrite:
recovery replays the chunks and drops rows whose timestamp is below the
cutoff, mirroring how Scuba re-applies deletions after recovery
("Any needed deletions are made after recovery", Figure 5 caption).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.columnstore.leafmap import LeafMap
from repro.columnstore.table import Table
from repro.disk.format import write_chunk, write_file_header
from repro.errors import RecoveryError

_MANIFEST = "manifest.json"


def _table_filename(name: str) -> str:
    """A filesystem-safe file name for a table (hex-escapes odd chars)."""
    safe = "".join(
        ch if ch.isalnum() or ch in "-_." else f"%{ord(ch):02x}" for ch in name
    )
    return f"{safe}.scuba"


class DiskBackup:
    """Manages the legacy-format backup of one leaf's tables."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._manifest: dict[str, dict[str, int]] = {}
        self._load_manifest()

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------

    def _manifest_path(self) -> Path:
        return self.directory / _MANIFEST

    def _load_manifest(self) -> None:
        path = self._manifest_path()
        if path.exists():
            try:
                self._manifest = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise RecoveryError(f"unreadable backup manifest: {exc}") from exc

    def _save_manifest(self) -> None:
        tmp = self._manifest_path().with_suffix(".tmp")
        tmp.write_text(json.dumps(self._manifest, indent=1, sort_keys=True))
        os.replace(tmp, self._manifest_path())

    def _entry(self, table_name: str) -> dict[str, int]:
        return self._manifest.setdefault(
            table_name, {"synced_rows": 0, "expire_before": 0}
        )

    def table_file(self, table_name: str) -> Path:
        return self.directory / _table_filename(table_name)

    @property
    def table_names(self) -> list[str]:
        return list(self._manifest)

    def synced_rows(self, table_name: str) -> int:
        return self._manifest.get(table_name, {}).get("synced_rows", 0)

    def expire_cutoff(self, table_name: str) -> int:
        return self._manifest.get(table_name, {}).get("expire_before", 0)

    # ------------------------------------------------------------------
    # Sync points
    # ------------------------------------------------------------------

    def sync_table(self, table: Table) -> int:
        """Append every not-yet-synced row of ``table`` as one chunk.

        Returns the number of rows written.  Uses the table's monotone
        ingest/expiry counters to find the delta since the last sync, so
        repeated calls are idempotent when nothing changed.
        """
        entry = self._entry(table.name)
        watermark = entry["synced_rows"]
        expired = table.total_rows_expired
        total = table.total_rows_ingested
        start = max(watermark, expired)
        if start >= total:
            # Rows may have expired past the watermark without new data.
            if expired > watermark:
                entry["synced_rows"] = expired
                self._save_manifest()
            return 0
        all_rows = table.to_rows()
        new_rows = all_rows[start - expired :]
        path = self.table_file(table.name)
        is_new = not path.exists()
        with open(path, "ab") as fh:
            if is_new:
                write_file_header(fh)
            written = write_chunk(fh, new_rows)
            fh.flush()
            os.fsync(fh.fileno())
        entry["synced_rows"] = total
        self._save_manifest()
        return written

    def sync_leafmap(self, leafmap: LeafMap) -> int:
        """Sync every table; returns total rows written."""
        return sum(self.sync_table(table) for table in leafmap)

    def record_expiry(self, table_name: str, cutoff_time: int) -> None:
        """Advance a table's expiry watermark (never backwards)."""
        entry = self._entry(table_name)
        if cutoff_time > entry["expire_before"]:
            entry["expire_before"] = cutoff_time
            self._save_manifest()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def drop_table(self, table_name: str) -> None:
        self._manifest.pop(table_name, None)
        self._save_manifest()
        path = self.table_file(table_name)
        if path.exists():
            path.unlink()

    def wipe(self) -> None:
        """Delete every backup file and the manifest (tests/teardown)."""
        for name in list(self._manifest):
            self.drop_table(name)
        if self._manifest_path().exists():
            self._manifest_path().unlink()
        self._manifest = {}
