"""Shared-memory layout as the *disk* format (paper, Section 6).

"One large overhead in Scuba's disk recovery is translating from the disk
format to the heap memory format. [...] We are planning to use the shared
memory format described in this paper as the disk format, instead."

This module implements that future-work plan: a table is written to disk
as exactly the contiguous buffer that would go into its shared memory
segment (header, schema, column offset table, raw RBC payloads).
Recovery is then a read plus per-column buffer copies — no row-by-row
re-translation — and experiment E12 measures the speedup.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path

from repro.columnstore.leafmap import LeafMap
from repro.columnstore.rowblock import RowBlock
from repro.columnstore.table import Table
from repro.errors import CorruptionError
from repro.shm.layout import iter_blocks_from_segment  # format reuse, not shm I/O
from repro.util.binary import BufferReader, BufferWriter
from repro.util.checksum import crc32_of, verify_crc32

SHMDISK_MAGIC = 0x4644_4D53  # "SMDF"
_FILE_HEADER = struct.Struct("<IIQ")  # magic, crc of body, body length


def _table_filename(name: str) -> str:
    safe = "".join(
        ch if ch.isalnum() or ch in "-_." else f"%{ord(ch):02x}" for ch in name
    )
    return f"{safe}.shmdisk"


def _pack_table(table_name: str, blocks: list[RowBlock]) -> bytes:
    """The segment-content bytes for a table (same shape as Figure 4)."""
    from repro.shm.layout import _segment_preamble  # shared, format-defining

    preamble, _, __ = _segment_preamble(table_name, blocks)
    writer = BufferWriter()
    writer.write_bytes(preamble)
    for block in blocks:
        writer.write_bytes(block.pack())
    return writer.getvalue()


def write_table_shm_format(
    directory: str | Path, table_name: str, blocks: list[RowBlock]
) -> Path:
    """Write one table's shm-format disk file; returns its path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    body = _pack_table(table_name, blocks)
    path = directory / _table_filename(table_name)
    tmp = path.with_suffix(".tmp")
    with open(tmp, "wb") as fh:
        fh.write(_FILE_HEADER.pack(SHMDISK_MAGIC, crc32_of(body), len(body)))
        fh.write(body)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def write_leafmap_shm_format(directory: str | Path, leafmap: LeafMap) -> list[Path]:
    """Snapshot every table of a leaf in the shm disk format."""
    return [
        write_table_shm_format(directory, table.name, table.blocks)
        for table in leafmap
    ]


def read_table_shm_format(path: str | Path) -> tuple[str, list[RowBlock]]:
    """Read one shm-format file back into heap row blocks."""
    raw = Path(path).read_bytes()
    if len(raw) < _FILE_HEADER.size:
        raise CorruptionError("shm-format disk file shorter than its header")
    magic, crc, body_len = _FILE_HEADER.unpack(raw[: _FILE_HEADER.size])
    if magic != SHMDISK_MAGIC:
        raise CorruptionError(f"bad shm-format disk magic 0x{magic:08x}")
    body = memoryview(raw)[_FILE_HEADER.size : _FILE_HEADER.size + body_len]
    if len(body) < body_len:
        raise CorruptionError("shm-format disk file truncated")
    verify_crc32(crc, body)
    table_name = ""
    blocks: list[RowBlock] = []
    for table_name, block in iter_blocks_from_segment(body):
        blocks.append(block)
    if not blocks:
        reader = BufferReader(body, offset=16)
        table_name = reader.read_str()
    return table_name, blocks


def recover_leafmap_shm_format(directory: str | Path, leafmap: LeafMap) -> int:
    """Rebuild a leaf map from a directory of shm-format files."""
    total = 0
    for path in sorted(Path(directory).glob("*.shmdisk")):
        table_name, blocks = read_table_shm_format(path)
        table = leafmap.get_or_create(table_name)
        table.replace_blocks(blocks)
        rows = sum(block.row_count for block in blocks)
        table.total_rows_ingested = rows
        total += rows
    return total
