"""Shared-memory layout as the *disk* format (paper, Section 6).

"One large overhead in Scuba's disk recovery is translating from the disk
format to the heap memory format. [...] We are planning to use the shared
memory format described in this paper as the disk format, instead."

This module implements that future-work plan: a table is written to disk
as exactly the contiguous buffer that would go into its shared memory
segment (header, schema, column offset table, raw RBC payloads).
Recovery is then a read plus per-column buffer copies — no row-by-row
re-translation — and experiment E12 measures the speedup.

File layout::

    u32 magic "SMDF"
    u16 format version
    u16 flags                 (bit 0: file is a delta, not a base snapshot)
    u32 crc32 of body
    u64 body length
    u64 snapshot generation   (matches the manifest's watermark when fresh)
    u64 rows ingested         (table watermark at snapshot time)
    u64 rows expired          (table watermark at snapshot time)
    body = the exact table-segment bytes (Figure 4 preamble + packed blocks)

The generation number and the two watermarks make a snapshot
self-describing: the recovery ladder can check it against the backup
manifest (stale → route down to legacy replay) and restore the table's
monotone counters so post-recovery incremental syncs line up.

The flags word (formerly reserved, always written as zero — so every
pre-delta file reads back as a base) marks *delta* files: the same
envelope and body layout, but the body holds only the blocks sealed
since the previous chain generation.  A delta is meaningful only through
its manifest chain link; the chain reader cross-checks the flag against
the link's declared kind so a base can never be silently consumed as a
delta or vice versa.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from pathlib import Path

from repro.columnstore.leafmap import LeafMap
from repro.columnstore.rowblock import RowBlock
from repro.errors import CorruptionError, LayoutVersionError
from repro.shm.layout import read_segment_header  # format reuse, not shm I/O
from repro.util.binary import BufferWriter
from repro.util.checksum import crc32_of, verify_crc32

SHMDISK_MAGIC = 0x4644_4D53  # "SMDF"
#: Version of the snapshot *file envelope* (header below).  Independent of
#: ``SHM_LAYOUT_VERSION``, which governs the body bytes and is validated by
#: :func:`read_segment_header` when the body is parsed.
SHMDISK_FORMAT_VERSION = 2
_FILE_HEADER = struct.Struct("<IHHIQQQQ")
# magic, format version, flags, crc of body, body length,
# snapshot generation, rows ingested, rows expired

#: Envelope flag bit: the file is a per-block delta, not a base snapshot.
SNAPSHOT_FLAG_DELTA = 0x0001
_KNOWN_FLAGS = SNAPSHOT_FLAG_DELTA


@dataclass(frozen=True)
class ShmSnapshot:
    """One table's shm-format disk snapshot (or delta), fully decoded."""

    table_name: str
    blocks: list[RowBlock]
    generation: int
    rows_ingested: int
    rows_expired: int
    flags: int = 0

    @property
    def is_delta(self) -> bool:
        return bool(self.flags & SNAPSHOT_FLAG_DELTA)

    @property
    def row_count(self) -> int:
        return sum(block.row_count for block in self.blocks)


def _table_filename(name: str) -> str:
    safe = "".join(
        ch if ch.isalnum() or ch in "-_." else f"%{ord(ch):02x}" for ch in name
    )
    return f"{safe}.shmdisk"


def snapshot_filename(name: str) -> str:
    """The filesystem-safe snapshot file name for a table."""
    return _table_filename(name)


def delta_filename(name: str, generation: int) -> str:
    """The filesystem-safe delta file name for one chain generation."""
    base = _table_filename(name)
    stem, suffix = base.rsplit(".", 1)
    return f"{stem}.d{generation}.{suffix}"


def fsync_directory(directory: str | Path) -> None:
    """fsync a directory so a just-renamed file survives a crash.

    ``os.replace`` makes the rename atomic but not durable: until the
    containing directory's metadata reaches disk, a crash can roll the
    directory entry back and lose a file the manifest already vouches
    for.  POSIX requires an fsync on the directory fd itself.
    """
    fd = os.open(str(directory), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _pack_table(table_name: str, blocks: list[RowBlock]) -> bytes:
    """The segment-content bytes for a table (same shape as Figure 4)."""
    from repro.shm.layout import _segment_preamble  # shared, format-defining

    preamble, _, __ = _segment_preamble(table_name, blocks)
    writer = BufferWriter()
    writer.write_bytes(preamble)
    for block in blocks:
        writer.write_bytes(block.pack())
    return writer.getvalue()


def write_table_shm_format(
    directory: str | Path,
    table_name: str,
    blocks: list[RowBlock],
    *,
    generation: int = 0,
    rows_ingested: int | None = None,
    rows_expired: int = 0,
    flags: int = 0,
    filename: str | None = None,
) -> Path:
    """Write one table's shm-format disk file; returns its path.

    The write is atomic (tmp + ``os.replace``), the file is fsynced, and
    the containing directory is fsynced after the rename — a torn write
    can only ever leave the *previous* snapshot in place (which the
    generation check routes around), and a crash right after the rename
    cannot un-land a file the manifest is about to vouch for.

    ``filename`` overrides the default base-snapshot name — delta files
    live in the same directory under their chain-generation names — and
    ``flags`` lands in the envelope (``SNAPSHOT_FLAG_DELTA`` marks a
    delta body).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if rows_ingested is None:
        rows_ingested = rows_expired + sum(block.row_count for block in blocks)
    body = _pack_table(table_name, blocks)
    path = directory / (filename or _table_filename(table_name))
    tmp = path.with_suffix(".tmp")
    with open(tmp, "wb") as fh:
        fh.write(
            _FILE_HEADER.pack(
                SHMDISK_MAGIC,
                SHMDISK_FORMAT_VERSION,
                flags,
                crc32_of(body),
                len(body),
                generation,
                rows_ingested,
                rows_expired,
            )
        )
        fh.write(body)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    fsync_directory(directory)
    return path


def write_leafmap_shm_format(
    directory: str | Path, leafmap: LeafMap, *, generation: int = 0
) -> list[Path]:
    """Snapshot every table of a leaf in the shm disk format.

    Only sealed blocks are captured, so the embedded ingest watermark
    excludes still-buffered rows: recovering the snapshot and re-syncing
    must not skip them.
    """
    return [
        write_table_shm_format(
            directory,
            table.name,
            table.blocks,
            generation=generation,
            rows_ingested=table.total_rows_ingested - table.buffered_row_count,
            rows_expired=table.total_rows_expired,
        )
        for table in leafmap
    ]


def read_table_snapshot(path: str | Path) -> ShmSnapshot:
    """Read and validate one shm-format file (CRC, versions, bounds).

    Raises :class:`CorruptionError` for torn/truncated files and
    :class:`LayoutVersionError` when either the file envelope or the
    embedded segment layout was written by an incompatible build.
    """
    raw = Path(path).read_bytes()
    if len(raw) < _FILE_HEADER.size:
        raise CorruptionError("shm-format disk file shorter than its header")
    (
        magic,
        version,
        flags,
        crc,
        body_len,
        generation,
        rows_ingested,
        rows_expired,
    ) = _FILE_HEADER.unpack(raw[: _FILE_HEADER.size])
    if magic != SHMDISK_MAGIC:
        raise CorruptionError(f"bad shm-format disk magic 0x{magic:08x}")
    if version != SHMDISK_FORMAT_VERSION:
        raise LayoutVersionError(
            f"shm-format disk file version {version}; this build reads "
            f"{SHMDISK_FORMAT_VERSION}"
        )
    if flags & ~_KNOWN_FLAGS:
        raise LayoutVersionError(
            f"shm-format disk file carries unknown flags 0x{flags:04x}"
        )
    body = memoryview(raw)[_FILE_HEADER.size : _FILE_HEADER.size + body_len]
    if len(body) < body_len:
        raise CorruptionError("shm-format disk file truncated")
    verify_crc32(crc, body)
    # The body is byte-identical to a table segment, so the shared
    # preamble parser defines every offset — including the empty-table
    # case — and validates the embedded layout version for free.
    table_name, pairs = read_segment_header(body)
    blocks = [RowBlock.unpack(body[offset : offset + size]) for offset, size in pairs]
    return ShmSnapshot(
        table_name=table_name,
        blocks=blocks,
        generation=generation,
        rows_ingested=rows_ingested,
        rows_expired=rows_expired,
        flags=flags,
    )


def read_table_shm_format(path: str | Path) -> tuple[str, list[RowBlock]]:
    """Read one shm-format file back into heap row blocks."""
    snap = read_table_snapshot(path)
    return snap.table_name, snap.blocks


def recover_leafmap_shm_format(
    directory: str | Path, leafmap: LeafMap, backup=None
) -> int:
    """Rebuild a leaf map from a directory of shm-format files.

    Restores both monotone watermarks from each snapshot so subsequent
    :meth:`DiskBackup.sync_table` deltas line up, and — when ``backup``
    (any object with an ``expire_cutoff(name)`` method) is given —
    re-applies the manifest expiry cutoff so rows expired after the
    snapshot was taken do not resurrect.  Returns the rows present after
    the cutoff.
    """
    total = 0
    for path in sorted(Path(directory).glob("*.shmdisk")):
        snap = read_table_snapshot(path)
        if snap.is_delta:
            # Deltas are meaningful only through their manifest chain;
            # a bare directory walk must not install one as a full table.
            continue
        table = leafmap.get_or_create(snap.table_name)
        table.replace_blocks(snap.blocks)
        table.total_rows_ingested = snap.rows_ingested
        table.total_rows_expired = snap.rows_expired
        if backup is not None:
            pending = getattr(backup, "pending_expire_cutoff", None)
            cutoff = (
                pending(snap.table_name)
                if pending is not None
                else backup.expire_cutoff(snap.table_name)
            )
            if cutoff:
                table.expire_before(cutoff)
        total += table.row_count
    return total
