"""The legacy row-oriented disk format.

One file per table, holding a file header followed by *sync chunks*.
Each chunk is the batch of rows written at one synchronization point
(paper, Section 4.1: "only the sections of data that have changed since
the last synchronization point need to be updated").

File layout::

    u32 magic "SDSK"  | u16 version | u16 reserved
    chunk*

Chunk layout::

    u32 magic "CHNK"
    u32 row count
    u64 payload length
    u32 crc32 of payload
    payload: rows, each = varint n_cols + (name str, type u8, value)*

Value encodings: INT64 → i64, FLOAT64 → f64, STRING → len-prefixed UTF-8,
STRING_VECTOR → varint count + strings.

A truncated or checksum-failing trailing chunk is *skipped*, not fatal:
after a crash the last asynchronous write may be torn, and Scuba accepts
losing a tiny amount of data in exchange for a simple recovery path.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterable, Iterator, Mapping

from repro.errors import CorruptionError
from repro.types import ColumnType, ColumnValue
from repro.util.binary import BufferReader, BufferWriter
from repro.util.checksum import crc32_of

DISK_MAGIC = 0x4B534453  # "SDSK"
DISK_FORMAT_VERSION = 1
_FILE_HEADER = struct.Struct("<IHH")
CHUNK_MAGIC = 0x4B4E4843  # "CHNK"
_CHUNK_HEADER = struct.Struct("<IIQI")

#: Upper bound on one sync chunk: corrupt length fields beyond this are
#: rejected instead of driving a multi-gigabyte read (row blocks are
#: capped at 1 GB pre-compression, so no legitimate chunk approaches it).
MAX_CHUNK_BYTES = 1 << 31


def write_file_header(fh: BinaryIO) -> None:
    fh.write(_FILE_HEADER.pack(DISK_MAGIC, DISK_FORMAT_VERSION, 0))


def read_file_header(fh: BinaryIO) -> None:
    raw = fh.read(_FILE_HEADER.size)
    if len(raw) < _FILE_HEADER.size:
        raise CorruptionError("disk file shorter than its header")
    magic, version, _ = _FILE_HEADER.unpack(raw)
    if magic != DISK_MAGIC:
        raise CorruptionError(f"bad disk file magic 0x{magic:08x}")
    if version != DISK_FORMAT_VERSION:
        raise CorruptionError(f"unreadable disk format version {version}")


def _encode_row(writer: BufferWriter, row: Mapping[str, ColumnValue]) -> None:
    writer.write_varint(len(row))
    for name, value in row.items():
        writer.write_str(name)
        if isinstance(value, bool):
            raise CorruptionError("boolean values cannot be persisted")
        if isinstance(value, int):
            writer.write_u8(int(ColumnType.INT64))
            writer.write_i64(value)
        elif isinstance(value, float):
            writer.write_u8(int(ColumnType.FLOAT64))
            writer.write_f64(value)
        elif isinstance(value, str):
            writer.write_u8(int(ColumnType.STRING))
            writer.write_str(value)
        elif isinstance(value, list):
            writer.write_u8(int(ColumnType.STRING_VECTOR))
            writer.write_varint(len(value))
            for item in value:
                writer.write_str(item)
        else:
            raise CorruptionError(
                f"unsupported value type {type(value).__name__} for column '{name}'"
            )


def _decode_row(reader: BufferReader) -> dict[str, ColumnValue]:
    n_cols = reader.read_varint()
    row: dict[str, ColumnValue] = {}
    for _ in range(n_cols):
        name = reader.read_str()
        type_code = reader.read_u8()
        try:
            ctype = ColumnType(type_code)
        except ValueError as exc:
            raise CorruptionError(
                f"unknown column type code {type_code} for column '{name}'"
            ) from exc
        if ctype is ColumnType.INT64:
            row[name] = reader.read_i64()
        elif ctype is ColumnType.FLOAT64:
            row[name] = reader.read_f64()
        elif ctype is ColumnType.STRING:
            row[name] = reader.read_str()
        else:
            count = reader.read_varint()
            row[name] = [reader.read_str() for _ in range(count)]
    return row


def write_chunk(fh: BinaryIO, rows: Iterable[Mapping[str, ColumnValue]]) -> int:
    """Append one sync chunk; returns the number of rows written."""
    writer = BufferWriter()
    count = 0
    for row in rows:
        _encode_row(writer, row)
        count += 1
    payload = writer.getvalue()
    fh.write(_CHUNK_HEADER.pack(CHUNK_MAGIC, count, len(payload), crc32_of(payload)))
    fh.write(payload)
    return count


def read_chunk_payloads(fh: BinaryIO) -> Iterator[tuple[int, bytes]]:
    """Yield each intact chunk as ``(row_count, payload)``, rows undecoded.

    The validity rules are the file's, independent of decoding: CRC
    verified, silent stop at a torn tail, raise on mid-file corruption.
    Parallel replay partitions on these raw payloads — row counts come
    from the chunk headers without paying the row decode — and the
    serial reader below decodes the same stream, so both see an
    identical chunk set.
    """
    read_file_header(fh)
    while True:
        header = fh.read(_CHUNK_HEADER.size)
        if not header:
            return
        if len(header) < _CHUNK_HEADER.size:
            return  # torn chunk header at EOF
        magic, n_rows, payload_len, crc = _CHUNK_HEADER.unpack(header)
        if magic != CHUNK_MAGIC:
            raise CorruptionError(f"bad chunk magic 0x{magic:08x} mid-file")
        if payload_len > MAX_CHUNK_BYTES:
            raise CorruptionError(
                f"chunk claims {payload_len} payload bytes (cap {MAX_CHUNK_BYTES})"
            )
        payload = fh.read(payload_len)
        if len(payload) < payload_len:
            return  # torn payload at EOF
        if crc32_of(payload) != crc:
            if fh.read(1):
                raise CorruptionError("chunk checksum mismatch mid-file")
            return  # torn final chunk
        yield n_rows, payload


def decode_chunk_rows(payload: bytes, n_rows: int) -> list[dict[str, ColumnValue]]:
    """Decode one intact chunk payload into its rows."""
    reader = BufferReader(payload)
    rows = [_decode_row(reader) for _ in range(n_rows)]
    if reader.remaining:
        raise CorruptionError("trailing bytes inside a chunk payload")
    return rows


def read_table_chunks(fh: BinaryIO) -> Iterator[list[dict[str, ColumnValue]]]:
    """Yield each intact chunk's rows; stop silently at a torn tail.

    A corrupted chunk in the *middle* of the file (followed by more data)
    is a real corruption and raises; only the final chunk may be torn.
    """
    for n_rows, payload in read_chunk_payloads(fh):
        yield decode_chunk_rows(payload, n_rows)
