"""Parallel legacy replay: the worst recovery rung, fanned across workers.

Single-stream legacy replay (``recover_leafmap``) pays its time in two
row-at-a-time loops: decoding the disk chunks and sealing the decoded
rows into compressed blocks (``RowBlock.from_rows``).  Both are
CPU-bound pure-Python work, so this module fans *both* across a worker
pool: the parent scans each table file once for raw chunk payloads
(header row counts, no row decode), partitions the global row stream at
exact seal boundaries into chunk-aligned spans, and each worker decodes
its span's chunks, seals its groups, and returns finished blocks.  The
parent merges partitions back in seal order, so the result is
bit-identical to single-stream replay: the same rows grouped at the
same boundaries into blocks in the same order, and recovery digests
match on both the thread and the process backend.

The partitioner can place boundaries without decoding rows only while
the row-count threshold is the binding seal constraint — the normal
case; the pre-compression byte cap is 1 GB.  Every worker re-checks
that assumption against its actual rows; if the byte cap would have
sealed a group early anywhere, the whole table is redone through the
exact single-stream grouping (:func:`iter_seal_groups`) with only the
sealing fanned out — slower, never wrong.  The same exact path handles
tables with an expiry cutoff, where chunk-header row counts overstate
the surviving stream.

The process backend exists because of the GIL: threads time-slice the
same interpreter, processes do not.  Chunks cross into workers as raw
payload bytes and blocks cross back in their packed (Figure 4) form —
both near-memcpy for pickle — so the parent's serial share stays small.

Each in-flight partition charges the payload bytes it ships against the
machine's :class:`~repro.core.parallel.FootprintBudget` (when given),
so parallel replay's transient footprint queues against concurrent
restarts instead of stacking on top of them.  Releases ride the
future's done-callback — never the parent thread — so a parent blocked
in ``acquire`` can always be unblocked by a finishing worker.
"""

from __future__ import annotations

import multiprocessing
from collections import deque
from concurrent.futures import Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Iterator, Mapping

from repro.columnstore.leafmap import LeafMap
from repro.columnstore.rowblock import RowBlock
from repro.columnstore.table import Table, estimate_row_bytes
from repro.core.parallel import FootprintBudget
from repro.disk.backup import DiskBackup
from repro.disk.format import decode_chunk_rows, read_chunk_payloads
from repro.disk.recovery import recover_table_rows
from repro.errors import RecoveryError, SchemaError
from repro.types import TIME_COLUMN, ColumnValue
from repro.util.clock import Clock, SystemClock

REPLAY_BACKENDS = ("thread", "process")

#: Partitions handed out per worker (per table): enough slices that a
#: slow partition does not leave the pool idle, few enough that the
#: boundary chunks decoded by two neighbours stay a rounding error.
_PARTITIONS_PER_WORKER = 3


def _validate_time(row: Mapping[str, ColumnValue]) -> None:
    """The ``Table.add_row`` row checks, verbatim — replay must reject
    exactly what live ingestion (and therefore serial replay) rejects."""
    if TIME_COLUMN not in row:
        raise SchemaError(f"row lacks the required '{TIME_COLUMN}' column")
    time_value = row[TIME_COLUMN]
    if not isinstance(time_value, int) or isinstance(time_value, bool):
        raise SchemaError(f"'{TIME_COLUMN}' must be an integer unix timestamp")


def iter_seal_groups(
    rows: Iterable[Mapping[str, ColumnValue]],
    rows_per_block: int,
    max_block_bytes: int,
) -> Iterator[tuple[list[dict[str, ColumnValue]], int]]:
    """Yield ``(rows, estimated_bytes)`` groups at exact seal boundaries.

    Mirrors :meth:`Table.add_row` precisely — same validation, same
    row-count and pre-compression byte thresholds checked *after* each
    append — so the groups are the blocks single-stream replay would
    seal, in the same order.  Any drift here breaks the digest-identity
    guarantee, which is why the thresholds are taken from the target
    table rather than re-defaulted.
    """
    buffer: list[dict[str, ColumnValue]] = []
    buffer_bytes = 0
    for row in rows:
        _validate_time(row)
        buffer.append(dict(row))
        buffer_bytes += estimate_row_bytes(row)
        if len(buffer) >= rows_per_block or buffer_bytes >= max_block_bytes:
            yield buffer, buffer_bytes
            buffer = []
            buffer_bytes = 0
    if buffer:
        yield buffer, buffer_bytes


# ----------------------------------------------------------------------
# Worker tasks (module-level: the process backend pickles references)
# ----------------------------------------------------------------------


def _seal_group(rows: list[dict[str, ColumnValue]], created_at: float) -> RowBlock:
    return RowBlock.from_rows(rows, created_at=created_at)


def _seal_group_packed(rows: list[dict[str, ColumnValue]], created_at: float) -> bytes:
    # Blocks cross the process boundary in their contiguous packed form;
    # the parent unpacks (and re-uids) them on arrival.
    return RowBlock.from_rows(rows, created_at=created_at).pack()


def _replay_partition(
    chunks: list[tuple[int, bytes]],
    skip: int,
    take: int,
    rows_per_block: int,
    max_block_bytes: int,
    created_at: float,
    packed: bool,
) -> list[RowBlock] | list[bytes] | None:
    """Decode a span of chunks and seal its ``take`` rows into blocks.

    ``skip`` positions the span's first row inside its first chunk (the
    partitioner aligns partitions to seal boundaries, not to chunk
    boundaries, so a boundary chunk is decoded by both neighbours).
    Returns ``None`` when the byte cap would have sealed a group before
    the row-count threshold — the count-based partitioning premise is
    then wrong for this table, and the caller falls back to exact
    single-stream grouping.
    """
    rows: list[dict[str, ColumnValue]] = []
    for n_rows, payload in chunks:
        rows.extend(decode_chunk_rows(payload, n_rows))
        if len(rows) >= skip + take:
            break
    rows = rows[skip : skip + take]
    blocks: list = []
    buffer: list[dict[str, ColumnValue]] = []
    buffer_bytes = 0
    for row in rows:
        _validate_time(row)
        buffer.append(row)
        buffer_bytes += estimate_row_bytes(row)
        if buffer_bytes >= max_block_bytes and len(buffer) < rows_per_block:
            return None  # byte cap binds: count-based boundaries are wrong
        if len(buffer) >= rows_per_block:
            blocks.append((_seal_group_packed if packed else _seal_group)(
                buffer, created_at
            ))
            buffer = []
            buffer_bytes = 0
    if buffer:
        blocks.append((_seal_group_packed if packed else _seal_group)(
            buffer, created_at
        ))
    return blocks


def _make_executor(backend: str, workers: int) -> Executor:
    if backend == "thread":
        return ThreadPoolExecutor(max_workers=workers, thread_name_prefix="replay")
    if backend == "process":
        return ProcessPoolExecutor(
            max_workers=workers, mp_context=multiprocessing.get_context("fork")
        )
    raise ValueError(f"unknown replay backend '{backend}' (want thread|process)")


# ----------------------------------------------------------------------
# Parent-side orchestration
# ----------------------------------------------------------------------


class _Submitter:
    """Budget-charged submission with in-order draining.

    Futures drain oldest-first, so results arrive in submission order —
    which the callers arrange to be seal order.  On an error every
    outstanding future is awaited (their done-callbacks return their
    budget bytes) before the error propagates, keeping the budget
    balanced for whatever path runs next.
    """

    def __init__(self, executor: Executor, budget: FootprintBudget | None) -> None:
        self._executor = executor
        self._budget = budget
        self._pending: deque[Future] = deque()

    def submit(self, nbytes: int, fn, /, *args) -> None:
        if self._budget is not None:
            self._budget.acquire(nbytes)
        try:
            future = self._executor.submit(fn, *args)
        except BaseException:
            if self._budget is not None:
                self._budget.release(nbytes)
            raise
        if self._budget is not None:
            # Release from the done-callback, not the drain: the parent
            # may be blocked in acquire() for the next submission, and
            # only a worker finishing can free bytes for it.
            future.add_done_callback(
                lambda _f, n=nbytes, b=self._budget: b.release(n)
            )
        self._pending.append(future)

    def __len__(self) -> int:
        return len(self._pending)

    def drain_oldest(self):
        return self._pending.popleft().result()

    def abandon(self) -> None:
        while self._pending:
            future = self._pending.popleft()
            if not future.cancel():
                try:
                    future.result()
                except BaseException:
                    pass


def _replay_table_exact(
    backup: DiskBackup,
    table: Table,
    executor: Executor,
    backend: str,
    budget: FootprintBudget | None,
    clock: Clock,
    window: int,
) -> int:
    """The exact-grouping path: serial decode, parallel seal.

    Used when count-based partitioning cannot hold — an expiry cutoff
    thins the stream mid-chunk, or the byte cap sealed a group early.
    The parent streams rows once through :func:`iter_seal_groups` and
    fans only ``RowBlock.from_rows`` out; correct for every input, but
    the serial decode bounds its speedup.
    """
    task = _seal_group if backend == "thread" else _seal_group_packed
    sub = _Submitter(executor, budget)
    blocks: list[RowBlock] = []
    count = 0

    def drain_oldest() -> None:
        result = sub.drain_oldest()
        blocks.append(RowBlock.unpack(result) if backend == "process" else result)

    try:
        groups = iter_seal_groups(
            recover_table_rows(backup, table.name),
            table.rows_per_block,
            table.max_block_bytes,
        )
        for rows, nbytes in groups:
            sub.submit(nbytes, task, rows, clock.now())
            count += len(rows)
            while len(sub) >= window:
                drain_oldest()
        while len(sub):
            drain_oldest()
    except BaseException:
        sub.abandon()
        raise
    table.replace_blocks(blocks)
    return count


def _replay_table_partitioned(
    backup: DiskBackup,
    table: Table,
    executor: Executor,
    backend: str,
    budget: FootprintBudget | None,
    clock: Clock,
    workers: int,
) -> int | None:
    """The fast path: chunk-aligned partitions, decode + seal in workers.

    Returns ``None`` when any worker reports the byte cap binding, in
    which case nothing was installed and the caller must rerun the
    table through :func:`_replay_table_exact`.
    """
    path = backup.table_file(table.name)
    if not path.exists():
        table.replace_blocks([])
        return 0
    with open(path, "rb") as fh:
        chunks = list(read_chunk_payloads(fh))
    counts = [n_rows for n_rows, _ in chunks]
    total = sum(counts)
    if total == 0:
        table.replace_blocks([])
        return 0
    rpb = table.rows_per_block
    n_groups = -(-total // rpb)
    per_part = max(1, -(-n_groups // (workers * _PARTITIONS_PER_WORKER))) * rpb
    # Chunk index of each global row: starts[i] = first row of chunk i.
    starts: list[int] = []
    acc = 0
    for n in counts:
        starts.append(acc)
        acc += n
    packed = backend == "process"
    sub = _Submitter(executor, budget)
    blocks: list[RowBlock] = []
    results: list = []
    try:
        chunk_idx = 0
        for begin in range(0, total, per_part):
            end = min(begin + per_part, total)
            while starts[chunk_idx] + counts[chunk_idx] <= begin:
                chunk_idx += 1
            last = chunk_idx
            while starts[last] + counts[last] < end:
                last += 1
            span = chunks[chunk_idx : last + 1]
            sub.submit(
                sum(len(p) for _, p in span),
                _replay_partition,
                span,
                begin - starts[chunk_idx],
                end - begin,
                rpb,
                table.max_block_bytes,
                clock.now(),
                packed,
            )
            while len(sub) >= workers * _PARTITIONS_PER_WORKER:
                results.append(sub.drain_oldest())
        while len(sub):
            results.append(sub.drain_oldest())
    except BaseException:
        sub.abandon()
        raise
    for result in results:
        if result is None:
            return None  # byte cap bound somewhere: redo exactly
        blocks.extend(RowBlock.unpack(b) if packed else b for b in result)
    table.replace_blocks(blocks)
    return total


def replay_leafmap(
    backup: DiskBackup,
    leafmap: LeafMap,
    workers: int = 4,
    backend: str = "thread",
    budget: FootprintBudget | None = None,
    clock: Clock | None = None,
    progress: Callable[[str, int], None] | None = None,
) -> int:
    """Rebuild every backed-up table via parallel legacy replay.

    A drop-in sibling of :func:`~repro.disk.recovery.recover_leafmap`:
    same empty-leafmap precondition, same watermark restoration, same
    ``progress`` callback, same return value — and the same recovered
    rows, block for block.  Only wall-clock differs.
    """
    if workers < 1:
        raise ValueError("replay needs at least one worker")
    if backend not in REPLAY_BACKENDS:
        raise ValueError(f"unknown replay backend '{backend}' (want thread|process)")
    if len(leafmap):
        raise RecoveryError("disk recovery requires an empty leaf map")
    clock = clock or SystemClock()
    total = 0
    with _make_executor(backend, workers) as executor:
        for table_name in backup.table_names:
            table = leafmap.create_table(table_name)
            count: int | None = None
            rows_expired = backup.rows_expired(table_name)
            trimmed = (
                (rows_expired > 0 or backup.unapplied_expire_cutoff(table_name) != 0)
                if rows_expired is not None
                else backup.expire_cutoff(table_name) != 0
            )
            if not trimmed:
                count = _replay_table_partitioned(
                    backup, table, executor, backend, budget, clock, workers
                )
            if count is None:
                count = _replay_table_exact(
                    backup,
                    table,
                    executor,
                    backend,
                    budget,
                    clock,
                    window=workers * 2,
                )
            # Restore the backup watermarks so future syncs line up,
            # exactly as single-stream replay does.
            table.total_rows_ingested = backup.synced_rows(table_name)
            table.total_rows_expired = backup.synced_rows(table_name) - count
            total += count
            if progress is not None:
                progress(table_name, count)
    return total
