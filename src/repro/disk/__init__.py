"""Disk backup substrate (paper, Section 4.1).

Scuba stores a backup of all incoming data on local disk, so recovery is
always possible even after a crash.  The backup's *legacy format* is
row-oriented and deliberately different from the in-memory column layout:
recovery must re-read every row and re-translate it into compressed row
block columns, which is the step the paper measures at 2.5–3 hours per
machine ("translating it to its in-memory format", 4 orders of magnitude
above query latency).

This package also implements the paper's Section 6 future-work idea as
:mod:`repro.disk.shmformat`: writing the shared-memory (contiguous
column) layout to disk instead, which turns recovery into a near-copy
and is benchmarked as experiment E12.
"""

from repro.disk.backup import DiskBackup
from repro.disk.format import (
    read_table_chunks,
    write_chunk,
    write_file_header,
)
from repro.disk.recovery import (
    iter_snapshot_tables,
    recover_leafmap,
    recover_leafmap_snapshots,
    recover_table_rows,
)
from repro.disk.shmformat import (
    ShmSnapshot,
    read_table_shm_format,
    read_table_snapshot,
    recover_leafmap_shm_format,
    write_leafmap_shm_format,
    write_table_shm_format,
)

__all__ = [
    "DiskBackup",
    "ShmSnapshot",
    "iter_snapshot_tables",
    "read_table_chunks",
    "read_table_shm_format",
    "read_table_snapshot",
    "recover_leafmap",
    "recover_leafmap_shm_format",
    "recover_leafmap_snapshots",
    "recover_table_rows",
    "write_chunk",
    "write_file_header",
    "write_leafmap_shm_format",
    "write_table_shm_format",
]
