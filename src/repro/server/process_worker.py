"""The leaf server worker process.

``python -m repro.server.process_worker`` runs one :class:`LeafServer`
in its own operating system process and serves a line-oriented JSON
protocol on stdin/stdout.  This is the deployment unit of the paper: a
process whose heap dies with it, whose shared memory does not.

Protocol: one JSON object per line in, one per line out.

Requests::

    {"op": "start", "memory_recovery_enabled": true}
    {"op": "status"}
    {"op": "digest"}                           # sha256 of all rows
    {"op": "add_rows", "table": "events", "rows": [...]}
    {"op": "query", "query": {...Query.to_dict()...}}
    {"op": "sync"}
    {"op": "expire", "retention_seconds": 86400}
    {"op": "shutdown", "use_shm": true}        # replies, then exits 0
    {"op": "restart", "mode": "execv", "version": "v2"}  # shm handoff, then
                                               # re-exec (or exit 75 for the
                                               # supervisor, mode "exit")
    {"op": "crash"}                            # exits 70 without replying
    {"op": "hang"}                             # stops reading (watchdog test)

Responses: ``{"ok": true, ...}`` or ``{"ok": false, "error": "..."}``.

``status`` reports the process's ``pid`` and a random per-image
``incarnation`` token, so a controller can prove a restart really
replaced the process image: after ``restart`` the incarnation always
changes, and in supervised mode the pid does too.

A malformed request gets an error response; an unexpected internal error
also gets an error response (the worker keeps serving) — only
``shutdown``/``restart``/``crash`` end the process (``restart`` with
mode ``execv`` "ends" it by replacing the image in place).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import uuid

from repro.disk.backup import DiskBackup
from repro.query.aggregate import partial_to_wire
from repro.query.query import Query
from repro.server.leaf import LeafServer
from repro.server.restart_manager import (
    RESTART_EXIT_CODE,
    reexec_worker,
    request_restart,
    rewrite_version,
)
from repro.util.checksum import rows_digest

#: Regenerated every time this module is (re)imported — i.e. once per
#: process image.  Survives nothing: not fork alone (same import), but
#: any exec or fresh spawn gets a new one, which is exactly the "is this
#: really a new process image?" witness the restart protocol needs.
_INCARNATION = uuid.uuid4().hex[:12]


def _handle(leaf: LeafServer, request: dict) -> dict:
    op = request.get("op")
    if op == "start":
        started = time.perf_counter()
        report = leaf.start(
            memory_recovery_enabled=request.get("memory_recovery_enabled", True)
        )
        return {
            "ok": True,
            "method": report.method.value,
            "rows": report.rows,
            "tables": report.tables,
            "seconds": time.perf_counter() - started,
        }
    if op == "status":
        return {
            "ok": True,
            "status": leaf.status.value,
            "version": leaf.version,
            "rows": leaf.leafmap.row_count,
            "used_bytes": leaf.used_bytes,
            "free_memory": leaf.free_memory,
            "pid": os.getpid(),
            "incarnation": _INCARNATION,
        }
    if op == "digest":
        snapshot = leaf.leafmap.snapshot_rows()
        return {
            "ok": True,
            "digest": rows_digest(snapshot),
            "rows": sum(len(rows) for rows in snapshot.values()),
        }
    if op == "add_rows":
        added = leaf.add_rows(request["table"], request["rows"])
        return {"ok": True, "added": added}
    if op == "query":
        execution = leaf.query(Query.from_dict(request["query"]))
        return {
            "ok": True,
            "partial": partial_to_wire(execution.partial),
            "rows_scanned": execution.rows_scanned,
            "blocks_pruned": execution.blocks_pruned,
        }
    if op == "sync":
        return {"ok": True, "rows_synced": leaf.sync_to_disk()}
    if op == "expire":
        return {"ok": True, "rows_dropped": leaf.expire(request["retention_seconds"])}
    raise ValueError(f"unknown op {op!r}")


def serve(leaf: LeafServer, stdin=None, stdout=None, reexec=None) -> int:
    """Serve requests until shutdown/restart/crash/EOF; returns the exit
    code.

    ``reexec``, when given, is a ``f(version_or_none)`` that replaces
    this process image in place (``os.execv``); ``main`` wires it to
    :func:`~repro.server.restart_manager.reexec_worker`.  Without it a
    ``restart`` request in execv mode degrades to the exit-code path,
    which keeps the in-process tests exec-free.
    """
    stdin = stdin or sys.stdin
    stdout = stdout or sys.stdout
    # readline, not file iteration: iteration may read ahead, and any
    # buffered-but-unserved request would be lost across an execv.
    for line in iter(stdin.readline, ""):
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            _reply(stdout, {"ok": False, "error": f"bad json: {exc}"})
            continue
        op = request.get("op")
        if op == "shutdown":
            try:
                use_shm = request.get("use_shm", True)
                report = leaf.shutdown(use_shm=use_shm)
                _reply(
                    stdout,
                    {
                        "ok": True,
                        "used_shm": report is not None,
                        "bytes_copied": report.bytes_copied if report else 0,
                    },
                )
                return 0
            except Exception as exc:  # failed copy == dirty death
                _reply(stdout, {"ok": False, "error": str(exc)})
                return 1
        if op == "restart":
            # The rollover handoff: shared-memory shutdown, then either
            # replace this image in place (execv: same pid, new image,
            # pipes survive) or exit RESTART_EXIT_CODE for the
            # supervisor to respawn (new pid, optionally new version).
            mode = request.get("mode", "execv")
            version = request.get("version")
            try:
                report = leaf.shutdown(use_shm=request.get("use_shm", True))
            except Exception as exc:
                _reply(stdout, {"ok": False, "error": str(exc)})
                return 1
            _reply(
                stdout,
                {
                    "ok": True,
                    "mode": mode,
                    "used_shm": report is not None,
                    "bytes_copied": report.bytes_copied if report else 0,
                    "pid": os.getpid(),
                    "incarnation": _INCARNATION,
                },
            )
            if mode == "execv" and reexec is not None:
                reexec(version)  # never returns in production
            if mode != "execv" and version is not None:
                # Tell the supervisor which version to respawn as.
                request_restart(leaf.backup.directory, version=version)
            return RESTART_EXIT_CODE
        if op == "crash":
            return 70  # die without replying, heap evaporates
        if op == "hang":
            time.sleep(3600)  # the watchdog will kill us
            return 1
        try:
            _reply(stdout, _handle(leaf, request))
        except Exception as exc:
            _reply(stdout, {"ok": False, "error": f"{type(exc).__name__}: {exc}"})
    return 0  # EOF: controller went away; exit quietly


def _reply(stdout, payload: dict) -> None:
    stdout.write(json.dumps(payload) + "\n")
    stdout.flush()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="repro leaf server worker")
    parser.add_argument("--leaf-id", required=True)
    parser.add_argument("--backup-dir", required=True)
    parser.add_argument("--namespace", default="scuba")
    parser.add_argument("--version", default="v1")
    parser.add_argument("--rows-per-block", type=int, default=None)
    parser.add_argument("--capacity-bytes", type=int, default=64 << 20)
    raw_args = list(sys.argv[1:] if argv is None else argv)
    args = parser.parse_args(raw_args)
    leaf = LeafServer(
        args.leaf_id,
        backup=DiskBackup(args.backup_dir),
        namespace=args.namespace,
        capacity_bytes=args.capacity_bytes,
        rows_per_block=args.rows_per_block,
        version=args.version,
    )

    def reexec(version: str | None) -> None:
        worker_args = raw_args
        if version is not None:
            worker_args = rewrite_version(worker_args, version)
        reexec_worker(worker_args)

    return serve(leaf, reexec=reexec)


if __name__ == "__main__":
    sys.exit(main())
