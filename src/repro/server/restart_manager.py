"""File-based restart signaling and in-place re-exec for leaf workers.

The paper's rollover (§4.3) replaces a leaf process with a new binary
while the data waits in shared memory.  Two mechanisms make that a real
old-process → new-process handoff here rather than a same-heap
simulation:

- **Re-exec**: after shutting down into shared memory, a worker calls
  ``os.execv`` on itself.  The pid survives but the process image — heap
  and all — is replaced; the new image's only way back to the data is
  the shm protocol.  Open file descriptors survive exec, so the
  controller's stdin/stdout pipes keep working across the swap.
- **Restart request file + exit code**: a worker (or a deploy script)
  drops ``restart.requested`` in the leaf's backup directory, or the
  worker exits with :data:`RESTART_EXIT_CODE`; the supervisor loop
  (:mod:`repro.server.supervisor`) treats either as "respawn me",
  optionally with a new ``--version`` read from the request file — the
  upgrade path, where the new process genuinely has a new pid.

The request file lives in the backup directory because that is the one
per-leaf location that is durable, private to the leaf, and already
known to every process involved.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

#: Dropped into the leaf's backup directory to request a respawn.
RESTART_FILE = "restart.requested"

#: Exit status meaning "respawn me" to the supervisor.  75 is EX_TEMPFAIL
#: ("temporary failure, retry"), the closest sysexits.h has to a planned
#: restart; it cannot collide with 0 (clean exit) or 70 (crash op).
RESTART_EXIT_CODE = 75


def request_restart(
    directory: str | Path, version: str | None = None, at: float | None = None
) -> Path:
    """Write the restart request file, overwriting any previous request.

    ``version`` asks the supervisor to respawn the worker with a new
    ``--version`` — the upgrade handoff.  Returns the file path.
    """
    path = Path(directory) / RESTART_FILE
    if at is None:
        at = time.time()
    lines = [f"restart requested at {at:.0f}"]
    if version is not None:
        lines.append(f"version {version}")
    path.write_text("\n".join(lines) + "\n")
    return path


def check_restart(directory: str | Path) -> bool:
    """Whether a restart has been requested for this leaf."""
    return (Path(directory) / RESTART_FILE).exists()


def read_restart_version(directory: str | Path) -> str | None:
    """The target version named in the request file, if any."""
    path = Path(directory) / RESTART_FILE
    if not path.exists():
        return None
    for line in path.read_text().splitlines():
        if line.startswith("version "):
            return line[len("version "):].strip() or None
    return None


def clear_restart(directory: str | Path) -> None:
    """Remove the request file; a no-op when none exists."""
    try:
        (Path(directory) / RESTART_FILE).unlink()
    except FileNotFoundError:
        pass


def rewrite_version(args: list[str], version: str) -> list[str]:
    """A copy of worker argv with its ``--version`` value replaced (or
    appended when absent) — how an upgrade changes the binary's identity
    without changing anything else about the spawn."""
    out = list(args)
    for index, arg in enumerate(out):
        if arg == "--version" and index + 1 < len(out):
            out[index + 1] = version
            return out
        if arg.startswith("--version="):
            out[index] = f"--version={version}"
            return out
    return out + ["--version", version]


def reexec_worker(worker_args: list[str]) -> None:
    """Replace this process with a fresh worker image (never returns).

    Reconstructs the canonical ``python -m repro.server.process_worker``
    invocation rather than trusting ``sys.argv`` — the calling module's
    ``argv[0]`` differs between ``-m`` runs and script runs, and the
    module path form works for both.
    """
    sys.stdout.flush()
    sys.stderr.flush()
    os.execv(
        sys.executable,
        [sys.executable, "-m", "repro.server.process_worker", *worker_args],
    )
