"""A machine hosting several leaf servers and one aggregator.

"Having eight servers allows for greater parallelism during query
execution [...] More importantly for recovery, eight servers mean that we
can restart the servers one at a time, while the other seven servers
continue to execute queries."  (paper, Section 2)

The machine is mostly a container — leaves do the work — but it is the
unit at which the rollover coordinator enforces "at most one leaf per
machine restarting" and at which the simulator models disk and memory
bandwidth contention.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.parallel import (
    ParallelRestartCoordinator,
    ParallelRestartReport,
)
from repro.disk.backup import DiskBackup
from repro.server.aggregator import Aggregator
from repro.server.leaf import DEFAULT_CAPACITY_BYTES, LeafServer
from repro.util.clock import Clock, SystemClock
from repro.util.memtrack import MemoryTracker

#: Paper: "Each machine currently runs eight leaf servers".
DEFAULT_LEAVES_PER_MACHINE = 8


class Machine:
    """One machine's leaves, aggregator, and local backup directory."""

    def __init__(
        self,
        machine_id: str,
        backup_root: str | Path,
        leaves_per_machine: int = DEFAULT_LEAVES_PER_MACHINE,
        namespace: str = "scuba",
        capacity_bytes: int = DEFAULT_CAPACITY_BYTES,
        clock: Clock | None = None,
        rows_per_block: int | None = None,
        version: str = "v1",
        shared_tracker: bool = False,
    ) -> None:
        if leaves_per_machine < 1:
            raise ValueError("a machine needs at least one leaf server")
        self.machine_id = str(machine_id)
        self.clock = clock or SystemClock()
        #: With ``shared_tracker`` every leaf reports to one tracker, so
        #: its peak is the machine's physical-memory high-water mark.
        self.tracker: MemoryTracker | None = (
            MemoryTracker() if shared_tracker else None
        )
        self.leaves: list[LeafServer] = []
        root = Path(backup_root) / f"machine-{self.machine_id}"
        for index in range(leaves_per_machine):
            leaf_id = f"{self.machine_id}.{index}"
            backup = DiskBackup(root / f"leaf-{index}")
            self.leaves.append(
                LeafServer(
                    leaf_id=leaf_id,
                    backup=backup,
                    namespace=namespace,
                    capacity_bytes=capacity_bytes,
                    clock=self.clock,
                    rows_per_block=rows_per_block,
                    version=version,
                    machine_id=self.machine_id,
                    tracker=self.tracker,
                )
            )
        self.aggregator = Aggregator(self.leaves)

    def start_all(self) -> None:
        for leaf in self.leaves:
            leaf.start()

    def restart_all(
        self,
        workers: int | None = None,
        budget_bytes: int | None = None,
        use_shm: bool = True,
        memory_recovery_enabled: bool = True,
        deadline_seconds: float | None = None,
        backend: str = "thread",
        adopt: bool = True,
        serve_while_restoring: bool = False,
    ) -> ParallelRestartReport:
        """Restart every leaf through shared memory, ``workers`` at a time.

        The machine-event path (kernel upgrade, power-down): all leaves
        shut down to shared memory concurrently, then all come back
        concurrently.  ``budget_bytes`` caps the combined in-flight copy
        windows so the machine-wide footprint stays at data + budget +
        metadata; ``workers`` defaults to one per leaf.  ``backend``
        picks the pool: ``"thread"`` (in-process, GIL-serialized copies)
        or ``"process"`` (forked workers, one copy stream per core, with
        the budget shared across processes).  ``adopt`` controls whether
        a process-backend restart folds the restored segments back into
        this object's leaves (benchmarks that only time the restart
        window may skip it).  ``serve_while_restoring`` brings each leaf
        back to *serving* at directory-publish time instead of waiting
        for the full copy; ``wait_restored_all`` drains the sweeps.
        """
        coordinator = ParallelRestartCoordinator(
            self.leaves,
            max_workers=workers,
            budget=budget_bytes,
            backend=backend,
        )
        return coordinator.restart_all(
            use_shm=use_shm,
            memory_recovery_enabled=memory_recovery_enabled,
            deadline_seconds=deadline_seconds,
            adopt=adopt,
            serve_while_restoring=serve_while_restoring,
        )

    def wait_restored_all(self, timeout: float | None = None) -> None:
        """Drain every leaf's serve-while-restoring background sweep."""
        for leaf in self.leaves:
            leaf.wait_restored(timeout=timeout)

    @property
    def restarting_leaves(self) -> list[LeafServer]:
        """Leaves currently not alive (the rollover safety check)."""
        return [leaf for leaf in self.leaves if not leaf.is_alive]

    @property
    def nbytes(self) -> int:
        return sum(leaf.used_bytes for leaf in self.leaves)

    def __repr__(self) -> str:
        alive = sum(1 for leaf in self.leaves if leaf.is_alive)
        return (
            f"Machine(id={self.machine_id!r}, leaves={len(self.leaves)}, "
            f"alive={alive})"
        )
