"""Controller-side handle on a leaf server running in its own process.

:class:`LeafProcess` spawns ``repro.server.process_worker``, speaks its
JSON-line protocol, and implements the deploy script's shutdown loop
(paper, §4.3): send the shutdown command, wait for the process to die,
kill it if it overruns the deadline — in which case the valid bit was
never set and the replacement restarts from disk.
"""

from __future__ import annotations

import json
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

from repro.core.watchdog import DEFAULT_SHUTDOWN_DEADLINE_SECONDS, wait_or_kill
from repro.errors import ReproError
from repro.query.aggregate import LeafPartial, partial_from_wire
from repro.query.query import Query


class LeafProcessError(ReproError):
    """The worker process misbehaved or reported an error."""


@dataclass
class LeafProcessConfig:
    """Everything needed to (re)spawn one leaf worker."""

    leaf_id: str
    backup_dir: str | Path
    namespace: str = "scuba"
    version: str = "v1"
    rows_per_block: int | None = None
    capacity_bytes: int = 64 << 20

    def argv(self) -> list[str]:
        argv = [
            sys.executable,
            "-m",
            "repro.server.process_worker",
            "--leaf-id",
            str(self.leaf_id),
            "--backup-dir",
            str(self.backup_dir),
            "--namespace",
            self.namespace,
            "--version",
            self.version,
            "--capacity-bytes",
            str(self.capacity_bytes),
        ]
        if self.rows_per_block is not None:
            argv += ["--rows-per-block", str(self.rows_per_block)]
        return argv


class LeafProcess:
    """One leaf server living in a child process."""

    def __init__(self, config: LeafProcessConfig, request_timeout: float = 120.0):
        self.config = config
        self._timeout = request_timeout
        self._proc: subprocess.Popen | None = None

    # ------------------------------------------------------------------
    # Process lifecycle
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._proc is not None and self._proc.poll() is None

    @property
    def pid(self) -> int | None:
        return self._proc.pid if self._proc else None

    def spawn(self, memory_recovery_enabled: bool = True) -> dict:
        """Start the worker process and have it recover its data.

        Returns the start report: ``{"method": "shared_memory"|"disk",
        "rows": ..., "seconds": ...}``.
        """
        if self.running:
            raise LeafProcessError(f"leaf {self.config.leaf_id} is already running")
        self._proc = subprocess.Popen(
            self.config.argv(),
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        return self.request(
            {"op": "start", "memory_recovery_enabled": memory_recovery_enabled}
        )

    def shutdown(
        self,
        use_shm: bool = True,
        deadline_seconds: float = DEFAULT_SHUTDOWN_DEADLINE_SECONDS,
    ) -> bool:
        """The §4.3 deploy loop: ask for a clean shutdown, wait, kill on
        overrun.  Returns True if the process exited on its own."""
        if not self.running:
            raise LeafProcessError(f"leaf {self.config.leaf_id} is not running")
        assert self._proc is not None and self._proc.stdin is not None
        self._proc.stdin.write(
            json.dumps({"op": "shutdown", "use_shm": use_shm}) + "\n"
        )
        self._proc.stdin.flush()
        clean = wait_or_kill(self._proc, timeout=deadline_seconds)
        self._drain()
        self._proc = None
        return clean

    def kill(self) -> None:
        """Simulate a hard crash: SIGKILL, no shutdown protocol."""
        if self._proc is not None:
            self._proc.kill()
            self._proc.wait()
            self._drain()
            self._proc = None

    def _drain(self) -> None:
        if self._proc is not None:
            for stream in (self._proc.stdin, self._proc.stdout, self._proc.stderr):
                if stream is not None:
                    try:
                        stream.close()
                    except OSError:
                        pass

    # ------------------------------------------------------------------
    # RPC
    # ------------------------------------------------------------------

    def request(self, payload: dict) -> dict:
        if not self.running:
            raise LeafProcessError(f"leaf {self.config.leaf_id} is not running")
        assert self._proc is not None
        assert self._proc.stdin is not None and self._proc.stdout is not None
        self._proc.stdin.write(json.dumps(payload) + "\n")
        self._proc.stdin.flush()
        line = self._proc.stdout.readline()
        if not line:
            stderr = ""
            if self._proc.stderr is not None:
                stderr = self._proc.stderr.read() or ""
            raise LeafProcessError(
                f"leaf {self.config.leaf_id} died mid-request: {stderr.strip()[-500:]}"
            )
        response = json.loads(line)
        if not response.get("ok"):
            raise LeafProcessError(
                f"leaf {self.config.leaf_id}: {response.get('error', 'unknown error')}"
            )
        return response

    # ------------------------------------------------------------------
    # Data plane conveniences
    # ------------------------------------------------------------------

    def status(self) -> dict:
        return self.request({"op": "status"})

    def add_rows(self, table: str, rows: list[dict]) -> int:
        return self.request({"op": "add_rows", "table": table, "rows": rows})["added"]

    def query_partial(self, query: Query) -> LeafPartial:
        response = self.request({"op": "query", "query": query.to_dict()})
        return partial_from_wire(response["partial"])

    def sync(self) -> int:
        return self.request({"op": "sync"})["rows_synced"]

    def __repr__(self) -> str:
        state = f"pid={self.pid}" if self.running else "stopped"
        return f"LeafProcess(leaf_id={self.config.leaf_id!r}, {state})"
