"""Controller-side handle on a leaf server running in its own process.

:class:`LeafProcess` spawns ``repro.server.process_worker``, speaks its
JSON-line protocol, and implements the deploy script's shutdown loop
(paper, §4.3): send the shutdown command, wait for the process to die,
kill it if it overruns the deadline — in which case the valid bit was
never set and the replacement restarts from disk.
"""

from __future__ import annotations

import json
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

from repro.core.watchdog import DEFAULT_SHUTDOWN_DEADLINE_SECONDS, wait_or_kill
from repro.errors import ReproError
from repro.query.aggregate import LeafPartial, partial_from_wire
from repro.query.query import Query


class LeafProcessError(ReproError):
    """The worker process misbehaved or reported an error."""


@dataclass
class LeafProcessConfig:
    """Everything needed to (re)spawn one leaf worker.

    With ``supervised=True`` the spawn goes through
    :mod:`repro.server.supervisor`: the worker runs as the supervisor's
    child (inheriting its stdio, so this controller's pipes survive
    respawns) and a restart request — exit code 75 or a
    ``restart.requested`` file in the backup dir — replaces it with a
    genuinely new process, optionally under a new version.
    """

    leaf_id: str
    backup_dir: str | Path
    namespace: str = "scuba"
    version: str = "v1"
    rows_per_block: int | None = None
    capacity_bytes: int = 64 << 20
    supervised: bool = False

    def worker_args(self) -> list[str]:
        args = [
            "--leaf-id",
            str(self.leaf_id),
            "--backup-dir",
            str(self.backup_dir),
            "--namespace",
            self.namespace,
            "--version",
            self.version,
            "--capacity-bytes",
            str(self.capacity_bytes),
        ]
        if self.rows_per_block is not None:
            args += ["--rows-per-block", str(self.rows_per_block)]
        return args

    def argv(self) -> list[str]:
        if self.supervised:
            return [
                sys.executable,
                "-m",
                "repro.server.supervisor",
                "--restart-dir",
                str(self.backup_dir),
                "--",
                *self.worker_args(),
            ]
        return [
            sys.executable,
            "-m",
            "repro.server.process_worker",
            *self.worker_args(),
        ]


class LeafProcess:
    """One leaf server living in a child process."""

    def __init__(self, config: LeafProcessConfig, request_timeout: float = 120.0):
        self.config = config
        self._timeout = request_timeout
        self._proc: subprocess.Popen | None = None

    # ------------------------------------------------------------------
    # Process lifecycle
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._proc is not None and self._proc.poll() is None

    @property
    def pid(self) -> int | None:
        return self._proc.pid if self._proc else None

    def spawn(self, memory_recovery_enabled: bool = True) -> dict:
        """Start the worker process and have it recover its data.

        Returns the start report: ``{"method": "shared_memory"|"disk",
        "rows": ..., "seconds": ...}``.
        """
        if self.running:
            raise LeafProcessError(f"leaf {self.config.leaf_id} is already running")
        self._proc = subprocess.Popen(
            self.config.argv(),
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        return self.request(
            {"op": "start", "memory_recovery_enabled": memory_recovery_enabled}
        )

    def shutdown(
        self,
        use_shm: bool = True,
        deadline_seconds: float = DEFAULT_SHUTDOWN_DEADLINE_SECONDS,
    ) -> bool:
        """The §4.3 deploy loop: ask for a clean shutdown, wait, kill on
        overrun.  Returns True if the process exited on its own."""
        if not self.running:
            raise LeafProcessError(f"leaf {self.config.leaf_id} is not running")
        assert self._proc is not None and self._proc.stdin is not None
        self._proc.stdin.write(
            json.dumps({"op": "shutdown", "use_shm": use_shm}) + "\n"
        )
        self._proc.stdin.flush()
        clean = wait_or_kill(self._proc, timeout=deadline_seconds)
        self._drain()
        self._proc = None
        return clean

    def restart(
        self,
        mode: str = "execv",
        version: str | None = None,
        use_shm: bool = True,
        memory_recovery_enabled: bool = True,
    ) -> dict:
        """The in-place upgrade handoff: shm shutdown, process swap,
        recover on the same pipes.

        ``mode="execv"`` re-execs the worker in place (same pid, new
        image); ``mode="exit"`` has it exit 75 for the supervisor to
        respawn (new pid) — which requires ``supervised=True``.  Either
        way this controller's stdin/stdout survive, so the method simply
        sends ``restart``, then ``start``s the successor and returns its
        report.  ``version`` relabels the successor — the upgrade.
        """
        if mode == "exit" and not self.config.supervised:
            raise LeafProcessError(
                "restart mode 'exit' needs a supervisor to respawn the "
                "worker (spawn with supervised=True)"
            )
        payload: dict = {"op": "restart", "mode": mode, "use_shm": use_shm}
        if version is not None:
            payload["version"] = version
            self.config.version = version  # future respawns keep it
        handoff = self.request(payload)
        start = self.request(
            {"op": "start", "memory_recovery_enabled": memory_recovery_enabled}
        )
        return {"handoff": handoff, "start": start}

    def kill(self) -> None:
        """Simulate a hard crash: SIGKILL, no shutdown protocol."""
        if self._proc is not None:
            self._proc.kill()
            self._proc.wait()
            self._drain()
            self._proc = None

    def _drain(self) -> None:
        if self._proc is not None:
            for stream in (self._proc.stdin, self._proc.stdout, self._proc.stderr):
                if stream is not None:
                    try:
                        stream.close()
                    except OSError:
                        pass

    # ------------------------------------------------------------------
    # RPC
    # ------------------------------------------------------------------

    def request(self, payload: dict) -> dict:
        if not self.running:
            raise LeafProcessError(f"leaf {self.config.leaf_id} is not running")
        assert self._proc is not None
        assert self._proc.stdin is not None and self._proc.stdout is not None
        self._proc.stdin.write(json.dumps(payload) + "\n")
        self._proc.stdin.flush()
        line = self._proc.stdout.readline()
        if not line:
            stderr = ""
            if self._proc.stderr is not None:
                stderr = self._proc.stderr.read() or ""
            raise LeafProcessError(
                f"leaf {self.config.leaf_id} died mid-request: {stderr.strip()[-500:]}"
            )
        response = json.loads(line)
        if not response.get("ok"):
            raise LeafProcessError(
                f"leaf {self.config.leaf_id}: {response.get('error', 'unknown error')}"
            )
        return response

    # ------------------------------------------------------------------
    # Data plane conveniences
    # ------------------------------------------------------------------

    def status(self) -> dict:
        return self.request({"op": "status"})

    def digest(self) -> str:
        """Content digest of all rows (restart-equivalence witness)."""
        return self.request({"op": "digest"})["digest"]

    def add_rows(self, table: str, rows: list[dict]) -> int:
        return self.request({"op": "add_rows", "table": table, "rows": rows})["added"]

    def query_partial(self, query: Query) -> LeafPartial:
        response = self.request({"op": "query", "query": query.to_dict()})
        return partial_from_wire(response["partial"])

    def sync(self) -> int:
        return self.request({"op": "sync"})["rows_synced"]

    def __repr__(self) -> str:
        state = f"pid={self.pid}" if self.running else "stopped"
        return f"LeafProcess(leaf_id={self.config.leaf_id!r}, {state})"
