"""The aggregator server.

"The aggregator servers distribute a query to all leaves and then
aggregate the results as they arrive from the leaves."  When some leaves
are restarting, the aggregator returns what the live leaves provided and
records the shortfall — the partial-result behaviour that makes rolling
restarts tolerable in the first place.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import StateError
from repro.query.aggregate import merge_leaf_results
from repro.query.execute import LeafExecution
from repro.query.query import Query, QueryResult
from repro.server.leaf import LeafServer


class Aggregator:
    """Fans one query out over a set of leaves and merges the partials.

    Aggregators compose into a tree (:class:`AggregatorTree`): a machine
    aggregator merges its local leaves' partials, and a root aggregator
    merges the machine-level partials — Figure 1's "Query aggregator /
    Leaf" structure.

    With a ``replica_router`` (``leaf_id -> LeafServer | None``) set, a
    leaf that cannot answer — mid-restart, down — has its share of the
    query answered by its table-level replica instead, so results during
    a restart window stay *complete* rather than partial.
    """

    def __init__(
        self,
        leaves: list[LeafServer],
        replica_router: Callable[[str], LeafServer | None] | None = None,
    ) -> None:
        self._leaves = list(leaves)
        self.replica_router = replica_router
        #: How many leaf-queries were answered by a replica stand-in.
        self.failovers = 0

    def _execute_with_failover(
        self, leaf: LeafServer, query: Query
    ) -> LeafExecution | None:
        """Run ``query`` on ``leaf``, or on its replica when it cannot.

        Returns ``None`` only when neither the primary nor a routed
        replica is willing — the caller counts that as a non-response.
        """
        if leaf.accepts_queries:
            try:
                return leaf.query(query)
            except StateError:
                # The leaf began restarting between the gate check and
                # the call; fall through to the replica, if any.
                pass
        router = self.replica_router
        if router is None:
            return None
        replica = router(leaf.leaf_id)
        if replica is None or not replica.accepts_queries:
            return None
        try:
            execution = replica.query(query)
        except StateError:
            return None
        self.failovers += 1
        return execution

    @property
    def leaves(self) -> list[LeafServer]:
        return list(self._leaves)

    def register(self, leaf: LeafServer) -> None:
        self._leaves.append(leaf)

    def query(self, query: Query) -> QueryResult:
        """Run ``query`` on every leaf currently willing to answer.

        Leaves that are down or mid-memory-recovery simply do not
        contribute; the result's ``coverage`` reflects that.
        """
        partials = []
        responded = 0
        rows_scanned = 0
        blocks_pruned = 0
        for leaf in self._leaves:
            execution = self._execute_with_failover(leaf, query)
            if execution is None:
                # No primary and no replica stand-in: the leaf
                # contributes nothing and coverage reflects it.
                continue
            partials.append(execution.partial)
            responded += 1
            rows_scanned += execution.rows_scanned
            blocks_pruned += execution.blocks_pruned
        result = merge_leaf_results(
            query,
            partials,
            leaves_total=len(self._leaves),
            rows_scanned=rows_scanned,
            blocks_pruned=blocks_pruned,
        )
        result.leaves_responded = responded
        return result


    def query_partial(self, query: Query):
        """This aggregator's *mergeable* partial (for tree composition).

        Returns ``(partial, leaves_responded, leaves_total)`` where the
        partial is the merge of the live leaves' partials — the same
        shape a single leaf produces, so upper tree levels are oblivious
        to fan-in depth.
        """
        from repro.query.aggregate import AggState, LeafPartial

        merged: LeafPartial = {}
        responded = 0
        for leaf in self._leaves:
            execution = self._execute_with_failover(leaf, query)
            if execution is None:
                continue
            responded += 1
            for group, states in execution.partial.items():
                mine = merged.get(group)
                if mine is None:
                    merged[group] = [
                        AggState(
                            s.func, s.count, s.total, s.minimum, s.maximum,
                            list(s.samples),
                        )
                        for s in states
                    ]
                else:
                    for target, incoming in zip(mine, states):
                        target.merge(incoming)
        return merged, responded, len(self._leaves)


class AggregatorTree:
    """A two-level aggregation tree: root over per-machine aggregators.

    "The aggregator servers distribute a query to all leaves and then
    aggregate the results as they arrive" — with hundreds of machines
    the root does not talk to every leaf directly; each machine's
    aggregator pre-merges its eight leaves and the root merges one
    partial per machine.  Results are identical to a flat merge (the
    aggregation states are associative), which the tests assert.
    """

    def __init__(self, machine_aggregators: list[Aggregator]) -> None:
        if not machine_aggregators:
            raise ValueError("an aggregation tree needs at least one aggregator")
        self._aggregators = list(machine_aggregators)

    @property
    def fan_out(self) -> int:
        return len(self._aggregators)

    def query(self, query: Query) -> QueryResult:
        partials = []
        responded = 0
        total = 0
        for aggregator in self._aggregators:
            partial, leaf_responded, leaf_total = aggregator.query_partial(query)
            partials.append(partial)
            responded += leaf_responded
            total += leaf_total
        result = merge_leaf_results(query, partials, leaves_total=total)
        result.leaves_responded = responded
        return result
