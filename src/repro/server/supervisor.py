"""A tiny supervisor loop for one leaf worker process.

``python -m repro.server.supervisor --restart-dir DIR -- <worker args>``
spawns ``repro.server.process_worker`` with the supervisor's own
stdin/stdout/stderr, waits for it to exit, and respawns it when the exit
asked for a restart — either :data:`~repro.server.restart_manager.
RESTART_EXIT_CODE` or a ``restart.requested`` file in ``--restart-dir``.
Any other exit status is final and becomes the supervisor's own.

Because the worker inherits the supervisor's stdio, a controller that
piped to the supervisor keeps its JSON-line connection across respawns:
the old worker dies, the new worker (a genuinely new pid, possibly a new
``--version`` when the request file names one) reads the next request
from the very same pipe.  Combined with shutdown-to-shared-memory this
is the paper's rollover on one machine: old process out, new process in,
data waiting in /dev/shm.

This loop is deliberately dumb — no backoff, no health checks — because
its only job in the reproduction is the handoff.  ``--max-restarts``
(default 16) keeps a crash-looping worker from spinning forever.
"""

from __future__ import annotations

import argparse
import subprocess
import sys

from repro.server.restart_manager import (
    RESTART_EXIT_CODE,
    check_restart,
    clear_restart,
    read_restart_version,
    rewrite_version,
)


def supervise(
    worker_args: list[str],
    restart_dir: str,
    max_restarts: int = 16,
    announce=None,
) -> int:
    """Run the worker until it exits without requesting a restart.

    Returns the final exit code.  ``announce`` (stderr by default) gets
    one line per respawn so test logs show the generation history.
    """
    args = list(worker_args)
    restarts = 0
    while True:
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.server.process_worker", *args]
        )
        code = proc.wait()
        requested = code == RESTART_EXIT_CODE or check_restart(restart_dir)
        if not requested or restarts >= max_restarts:
            return code
        version = read_restart_version(restart_dir)
        clear_restart(restart_dir)
        if version is not None:
            args = rewrite_version(args, version)
        restarts += 1
        if announce is not None:
            announce(
                f"supervisor: respawn #{restarts} (exit {code}, "
                f"version {version or 'unchanged'})"
            )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="supervise one repro leaf worker",
    )
    parser.add_argument(
        "--restart-dir",
        required=True,
        help="directory watched for restart.requested (the leaf's backup dir)",
    )
    parser.add_argument("--max-restarts", type=int, default=16)
    parser.add_argument(
        "worker_args",
        nargs=argparse.REMAINDER,
        help="arguments for repro.server.process_worker (prefix with --)",
    )
    args = parser.parse_args(argv)
    worker_args = args.worker_args
    if worker_args and worker_args[0] == "--":
        worker_args = worker_args[1:]

    def announce(line: str) -> None:
        print(line, file=sys.stderr, flush=True)

    return supervise(
        worker_args,
        restart_dir=args.restart_dir,
        max_restarts=args.max_restarts,
        announce=announce,
    )


if __name__ == "__main__":
    sys.exit(main())
