"""The leaf server.

A leaf stores a fraction of most tables, accepts new rows as they arrive,
deletes expired data, answers queries, and — the subject of the paper —
shuts down into shared memory and restarts from it.

Service status drives what a leaf will do (paper, Figure 5 and Section
4.3):

- ``ALIVE``: accepts adds, deletes, queries.
- ``RECOVERING_DISK``: accepts adds and queries ("the server also accepts
  new data as soon as it starts recovery"; queries see gradually
  increasing partial data).  Tailers avoid routing here when possible.
- ``RECOVERING_MEMORY``: accepts nothing — memory recovery takes seconds
  ("during memory recovery [...] no add data requests or queries are
  accepted").
- ``RECOVERING_MEMORY_SERVING``: the serve-while-restoring extension of
  memory recovery.  The block directory is published, queries fault in
  the blocks they touch, a background sweep fills the rest hottest
  columns first — so the leaf accepts adds *and* queries while most of
  its bytes still sit in shared memory.
- ``RECOVERING_REPLICA_SERVING``: the same serving window, but pending
  blocks fault in *over the wire* from a sibling replica leaf instead of
  from shared memory (the replica recovery rung).
- ``SHUTTING_DOWN``: rejects new work, finishes what is in flight.
- ``DOWN``: the process is gone.
"""

from __future__ import annotations

import threading
from enum import Enum
from typing import Iterable, Mapping

from repro.columnstore.colcache import (
    DEFAULT_CACHE_BYTES,
    CacheStats,
    DecodedColumnCache,
)
from repro.columnstore.leafmap import LeafMap
from repro.core.engine import RestartEngine, RestartReport
from repro.core.watchdog import CooperativeDeadline
from repro.disk.backup import DiskBackup
from repro.errors import StateError
from repro.query.execute import LeafExecution, execute_on_leaf
from repro.query.query import Query
from repro.types import ColumnValue
from repro.util.clock import Clock, SystemClock
from repro.util.memtrack import MemoryTracker

#: Scaled-down default leaf capacity.  A production Scuba leaf holds
#: 10–15 GB (144 GB machine / 8 leaves, minus headroom); tests and
#: examples run the same code against megabytes.
DEFAULT_CAPACITY_BYTES = 64 << 20


class LeafStatus(Enum):
    INIT = "init"
    RECOVERING_DISK = "recovering_disk"
    RECOVERING_MEMORY = "recovering_memory"
    RECOVERING_MEMORY_SERVING = "recovering_memory_serving"
    RECOVERING_REPLICA_SERVING = "recovering_replica_serving"
    ALIVE = "alive"
    SHUTTING_DOWN = "shutting_down"
    DOWN = "down"


class LeafServer:
    """One leaf server's full lifecycle."""

    def __init__(
        self,
        leaf_id: str,
        backup: DiskBackup,
        namespace: str = "scuba",
        capacity_bytes: int = DEFAULT_CAPACITY_BYTES,
        clock: Clock | None = None,
        rows_per_block: int | None = None,
        version: str = "v1",
        machine_id: str | None = None,
        tracker: MemoryTracker | None = None,
        query_cache_bytes: int = DEFAULT_CACHE_BYTES,
    ) -> None:
        self.leaf_id = str(leaf_id)
        self.machine_id = machine_id if machine_id is not None else self.leaf_id
        self.capacity_bytes = capacity_bytes
        self.clock = clock or SystemClock()
        self.version = version
        self._rows_per_block = rows_per_block
        # A machine restarting its leaves in parallel passes one shared
        # tracker so the footprint peak is measured machine-wide.
        self.tracker = tracker or MemoryTracker()
        self.backup = backup
        self.engine = RestartEngine(
            leaf_id=self.leaf_id,
            namespace=namespace,
            backup=backup,
            tracker=self.tracker,
            clock=self.clock,
        )
        #: The leaf-wide decoded-column cache: sealed-block queries read
        #: through it, its bytes are charged to the tracker's "cache"
        #: region, and every lifecycle transition that invalidates heap
        #: data (shutdown, crash, restore) empties it.
        self.column_cache = DecodedColumnCache(
            query_cache_bytes, tracker=self.tracker
        )
        self.leafmap = LeafMap(
            clock=self.clock,
            rows_per_block=rows_per_block,
            column_cache=self.column_cache,
        )
        self.status = LeafStatus.INIT
        self.last_restart_report: RestartReport | None = None
        #: The in-progress lazy restore (serve-while-restoring) and its
        #: background sweep thread; both None outside that window.
        self._restorer = None
        self._sweep_thread: threading.Thread | None = None
        self._restore_error: BaseException | None = None
        self._final_progress = None
        #: One coarse lock serializes the data plane against lifecycle
        #: transitions.  The paper's PREPARE state "waits for ADD/QUERY
        #: requests in progress to complete" before the copy starts —
        #: holding this lock across shutdown() is exactly that wait.
        self._lock = threading.RLock()

    def _new_leafmap(self) -> LeafMap:
        return LeafMap(
            clock=self.clock,
            rows_per_block=self._rows_per_block,
            column_cache=self.column_cache,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(
        self,
        memory_recovery_enabled: bool = True,
        serve_while_restoring: bool = False,
        sweep: bool = True,
    ) -> RestartReport:
        """Boot the leaf: restore from shared memory or disk.

        A brand-new leaf (no shared memory, no backup files) comes up
        empty via the disk path.

        With ``serve_while_restoring=True`` and valid shared memory, the
        leaf publishes the block directory, moves to
        ``RECOVERING_MEMORY_SERVING``, and returns *before* the bytes are
        restored: queries fault in what they touch and a background sweep
        fills the remainder hottest-first.  The returned report is the
        live in-progress object; call :meth:`wait_restored` for the final
        one.  ``sweep=False`` suppresses the background fill thread —
        only queries fault blocks in until ``wait_restored`` drains the
        rest inline; benchmarks and phase-controlled tests use it to
        take deterministic progress readings.

        On either path the status is flipped to ``RECOVERING_DISK`` only
        at the moment the engine actually falls back to disk — never
        earlier — so a leaf that attempted memory recovery advertises
        ``RECOVERING_MEMORY`` (rejecting work, per Figure 5) right up to
        the fallback boundary.
        """
        with self._lock:
            if self.status not in (LeafStatus.INIT, LeafStatus.DOWN):
                raise StateError(f"cannot start a leaf in status {self.status.value}")
            self.leafmap = self._new_leafmap()
            self._restore_error = None
            self._final_progress = None
            will_use_memory = memory_recovery_enabled and self.engine.shm_state_valid()
            self.status = (
                LeafStatus.RECOVERING_MEMORY
                if will_use_memory
                else LeafStatus.RECOVERING_DISK
            )

            def on_disk_fallback() -> None:
                # The Figure 5 boundary: memory recovery is abandoned and
                # disk recovery begins.  Flipping here (not before, not
                # after) is what lets tailers route adds to a leaf the
                # instant it starts accepting them.
                self.status = LeafStatus.RECOVERING_DISK

            if not serve_while_restoring:
                report = self.engine.restore(
                    self.leafmap,
                    memory_recovery_enabled=memory_recovery_enabled,
                    on_disk_fallback=on_disk_fallback,
                )
                self.last_restart_report = report
                self.status = LeafStatus.ALIVE
                return report

            restorer = self.engine.begin_lazy_restore(
                self.leafmap,
                memory_recovery_enabled=memory_recovery_enabled,
                on_disk_fallback=on_disk_fallback,
            )
            if restorer.done:
                # Empty leaf, disk-only boot, or a publish failure that
                # already ran the ladder — nothing left to serve lazily.
                self.last_restart_report = restorer.report
                self._final_progress = restorer.progress()
                self.status = LeafStatus.ALIVE
                return restorer.report
            self._restorer = restorer
            # The engine hands back whichever restorer its ladder chose;
            # the serving status advertises where pending blocks come
            # from (shared memory or a sibling replica's wire session).
            self.status = (
                LeafStatus.RECOVERING_REPLICA_SERVING
                if getattr(restorer, "source", "shm") == "replica"
                else LeafStatus.RECOVERING_MEMORY_SERVING
            )
            if sweep:
                self._sweep_thread = threading.Thread(
                    target=self._sweep_loop,
                    name=f"leaf-{self.leaf_id}-restore-sweep",
                    daemon=True,
                )
                self._sweep_thread.start()
            return restorer.report

    def _sweep_loop(self) -> None:
        """Background fill: one block per lock acquisition, hottest table
        first, so queries interleave freely with the sweep."""
        while True:
            with self._lock:
                restorer = self._restorer
                if restorer is None:
                    # crash() abandoned the restore out from under us.
                    return
                if restorer.done:
                    break
                try:
                    restorer.sweep_one()
                except Exception as exc:
                    # The whole ladder failed; the leaf cannot come up.
                    self._restore_error = exc
                    self._restorer = None
                    self.status = LeafStatus.DOWN
                    return
        with self._lock:
            self._finalize_restore_locked()

    def _finalize_restore_locked(self) -> None:
        restorer = self._restorer
        if restorer is None:
            return
        self._restorer = None
        self._final_progress = restorer.progress()
        if restorer.error is not None:
            self._restore_error = restorer.error
            self.status = LeafStatus.DOWN
            return
        self.last_restart_report = restorer.report
        if self.status in (
            LeafStatus.RECOVERING_MEMORY_SERVING,
            LeafStatus.RECOVERING_REPLICA_SERVING,
            LeafStatus.RECOVERING_DISK,
            LeafStatus.RECOVERING_MEMORY,
        ):
            self.status = LeafStatus.ALIVE

    def wait_restored(self, timeout: float | None = None) -> RestartReport | None:
        """Block until a serve-while-restoring boot has every block in.

        Returns the final restart report (or the last one, when no lazy
        restore is pending).  Re-raises the restore error if the whole
        recovery ladder failed in the background.
        """
        with self._lock:
            thread = self._sweep_thread
        if thread is not None:
            # Join outside the lock: the sweep thread takes it per block.
            thread.join(timeout)
            if thread.is_alive():
                raise TimeoutError(
                    f"leaf {self.leaf_id} still restoring after {timeout}s"
                )
            with self._lock:
                self._sweep_thread = None
        with self._lock:
            restorer = self._restorer
            if restorer is not None:
                # No sweep thread (``sweep=False``, or a query finished
                # the restore between thread iterations): drain inline.
                try:
                    restorer.drain()
                except Exception as exc:
                    self._restore_error = exc
                    self._restorer = None
                    self.status = LeafStatus.DOWN
                else:
                    self._finalize_restore_locked()
            if self._restore_error is not None:
                raise self._restore_error
            return self.last_restart_report

    def restore_progress(self):
        """Live (or final) serve-while-restoring progress counters."""
        with self._lock:
            if self._restorer is not None:
                return self._restorer.progress()
            return self._final_progress

    def shutdown(
        self,
        use_shm: bool = True,
        deadline: CooperativeDeadline | None = None,
    ) -> RestartReport | None:
        """Clean shutdown: stop new work, flush, and (optionally) copy
        everything to shared memory.

        With ``use_shm=False`` the leaf only flushes its backup — the
        pre-paper behaviour whose restart pays the full disk recovery.
        Returns the backup report (None for the disk-only path).
        """
        # A shutdown issued mid-serve-while-restoring first drains the
        # restore (outside the lock — the sweep thread needs it).
        with self._lock:
            draining = (
                self._sweep_thread is not None or self._restorer is not None
            )
        if draining:
            self.wait_restored()
        with self._lock:
            return self._shutdown_locked(use_shm, deadline)

    def _shutdown_locked(
        self,
        use_shm: bool,
        deadline: CooperativeDeadline | None,
    ) -> RestartReport | None:
        if self.status is not LeafStatus.ALIVE:
            raise StateError(f"cannot shut down a leaf in status {self.status.value}")
        self.status = LeafStatus.SHUTTING_DOWN
        self.leafmap.seal_all()
        self.backup.sync_leafmap(self.leafmap)
        report = None
        if use_shm:
            try:
                report = self.engine.backup_to_shm(self.leafmap, deadline=deadline)
                self.last_restart_report = report
            except Exception:
                # A failed/overrun copy behaves like a kill: the process
                # dies, the valid bit is false, the next start uses disk.
                self.status = LeafStatus.DOWN
                raise
        else:
            # Disk-only shutdown discards the heap wholesale; cached
            # decodes of the discarded blocks must not stay charged.
            self.column_cache.clear()
            self.leafmap = self._new_leafmap()
        self.status = LeafStatus.DOWN
        return report

    def crash(self) -> None:
        """Unclean death: heap contents are simply gone.

        Whatever was not yet synced to disk is lost, and any shared
        memory state is *not* created — the next start recovers from
        disk (the paper never trusts shared memory after a crash).
        """
        with self._lock:
            restorer = self._restorer
            if restorer is not None:
                # The valid bit is already down; abandoning just drops
                # our handles so the dead process leaks nothing locally.
                self._restorer = None
                restorer.abandon()
            self.column_cache.clear()
            self.leafmap = self._new_leafmap()
            self.status = LeafStatus.DOWN

    def absorb_process_shutdown(
        self, report: RestartReport | None = None
    ) -> None:
        """Fold a forked worker's shutdown of this leaf into this object.

        The worker ran the real ``shutdown()`` against its copy-on-write
        copy of the heap and exited: the old process — heap and all — is
        gone, and the named shm segments (if the shutdown succeeded) are
        what's left.  Here the coordinator's stand-in drops its now-dead
        heap image, rereads the manifest the worker advanced on disk,
        and releases the engine's heap charge from the shared tracker.
        With no report the worker died mid-shutdown; either way the leaf
        is DOWN and the next ``start()`` reads whatever state survived.
        """
        with self._lock:
            self.column_cache.clear()
            self.leafmap = self._new_leafmap()
            self.engine.forget_heap()
            self.backup.reload()
            if report is not None:
                self.last_restart_report = report
            self.status = LeafStatus.DOWN

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------

    @property
    def is_alive(self) -> bool:
        return self.status is LeafStatus.ALIVE

    @property
    def rows_per_block(self) -> int | None:
        """The block size this leaf's maps are built with (None = default)."""
        return self._rows_per_block

    @property
    def accepts_adds(self) -> bool:
        return self.status in (
            LeafStatus.ALIVE,
            LeafStatus.RECOVERING_DISK,
            LeafStatus.RECOVERING_MEMORY_SERVING,
            LeafStatus.RECOVERING_REPLICA_SERVING,
        )

    @property
    def accepts_queries(self) -> bool:
        return self.status in (
            LeafStatus.ALIVE,
            LeafStatus.RECOVERING_DISK,
            LeafStatus.RECOVERING_MEMORY_SERVING,
            LeafStatus.RECOVERING_REPLICA_SERVING,
        )

    @property
    def used_bytes(self) -> int:
        return self.leafmap.nbytes

    @property
    def free_memory(self) -> int:
        """What the leaf reports when a tailer asks (paper, Section 2)."""
        return max(0, self.capacity_bytes - self.leafmap.nbytes)

    def add_rows(
        self, table: str, rows: Iterable[Mapping[str, ColumnValue]]
    ) -> int:
        """Ingest a batch into one table."""
        with self._lock:
            if not self.accepts_adds:
                raise StateError(
                    f"leaf {self.leaf_id} rejects adds in status {self.status.value}"
                )
            return self.leafmap.get_or_create(table).add_rows(rows)

    def query(self, query: Query) -> LeafExecution:
        """Answer one query from local data."""
        with self._lock:
            if not self.accepts_queries:
                raise StateError(
                    f"leaf {self.leaf_id} rejects queries in status "
                    f"{self.status.value}"
                )
            return execute_on_leaf(self.leafmap, query)

    def sealed_snapshot(self) -> dict[str, tuple[list, int, int]]:
        """A point-in-time view of every table's blocks, all sealed.

        What this leaf serves a restarting sibling over the wire:
        ``{name: (blocks, rows_ingested, rows_expired)}``.  Taken under
        the data-plane lock so a concurrent add or expiry cannot tear
        the view.  Buffered rows are sealed first — they are
        acknowledged deliveries, and leaving them out would hand the
        restarting sibling less data than its own disk backup holds.
        """
        with self._lock:
            self.leafmap.seal_all()
            return {
                table.name: (
                    table.blocks,
                    table.total_rows_ingested,
                    table.total_rows_expired,
                )
                for table in self.leafmap
            }

    @property
    def cache_stats(self) -> CacheStats:
        """Decoded-column cache counters (hit rate, bytes, evictions)."""
        with self._lock:
            return self.column_cache.stats()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def sync_to_disk(self) -> int:
        """A periodic sync point; returns rows written.

        Skipped (returns 0) while a lazy restore is in flight: the
        table's monotone ingest watermarks already cover the pending
        blocks — they were synced before the shutdown that produced the
        shared memory image — and syncing a partially-resident block
        list would double-write rows into the backup.
        """
        with self._lock:
            if self._restorer is not None:
                return 0
            return self.backup.sync_leafmap(self.leafmap)

    def expire(self, retention_seconds: int) -> int:
        """Age-based expiry across all tables; returns rows dropped."""
        with self._lock:
            # The status check must share the critical section with the
            # expiry itself: checked outside, a concurrent stop() could
            # land between check and loop and we would expire into a
            # leafmap that is mid-backup.
            if self.status not in (
                LeafStatus.ALIVE,
                LeafStatus.RECOVERING_MEMORY_SERVING,
                LeafStatus.RECOVERING_REPLICA_SERVING,
            ):
                raise StateError(
                    f"leaf {self.leaf_id} cannot expire data in status "
                    f"{self.status.value}"
                )
            cutoff = int(self.clock.now()) - retention_seconds
            dropped = 0
            for table in self.leafmap:
                dropped += table.expire_before(cutoff)
                self.backup.record_expiry(
                    table.name, cutoff, rows_expired=table.total_rows_expired
                )
            if self._restorer is not None:
                # Blocks that aged out before ever faulting in are simply
                # never decoded — expiry reaches into the pending set too.
                dropped += self._restorer.expire_before(cutoff)
            return dropped

    def __repr__(self) -> str:
        return (
            f"LeafServer(id={self.leaf_id!r}, status={self.status.value}, "
            f"version={self.version}, rows={self.leafmap.row_count})"
        )
