"""Leaf and aggregator servers (paper, Section 2).

"Each machine currently runs eight leaf servers and one aggregator
server.  The leaf servers store the data. [...] The aggregator servers
distribute a query to all leaves and then aggregate the results as they
arrive from the leaves."
"""

from repro.server.aggregator import Aggregator
from repro.server.leaf import LeafServer, LeafStatus
from repro.server.machine import DEFAULT_LEAVES_PER_MACHINE, Machine
from repro.server.process_client import LeafProcess, LeafProcessConfig
from repro.server.retention import RetentionEnforcer, RetentionPolicy, RetentionReport

__all__ = [
    "Aggregator",
    "DEFAULT_LEAVES_PER_MACHINE",
    "LeafProcess",
    "LeafProcessConfig",
    "LeafServer",
    "LeafStatus",
    "Machine",
    "RetentionEnforcer",
    "RetentionPolicy",
    "RetentionReport",
]
