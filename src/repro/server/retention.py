"""Retention policies and their enforcement.

"They also delete data as it expires due to either age or size limits"
(paper, Section 2).  A :class:`RetentionPolicy` couples the two limits;
:class:`RetentionEnforcer` applies per-table policies across a set of
leaves, recording expiry watermarks in each leaf's disk backup so that a
disk recovery re-applies the deletions ("Any needed deletions are made
after recovery", Figure 5 caption).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import StateError
from repro.server.leaf import LeafServer


@dataclass(frozen=True)
class RetentionPolicy:
    """Age and/or size limits for one table (per leaf shard)."""

    max_age_seconds: int | None = None
    max_bytes_per_leaf: int | None = None

    def __post_init__(self) -> None:
        if self.max_age_seconds is None and self.max_bytes_per_leaf is None:
            raise ValueError("a retention policy needs at least one limit")
        if self.max_age_seconds is not None and self.max_age_seconds <= 0:
            raise ValueError("max_age_seconds must be positive")
        if self.max_bytes_per_leaf is not None and self.max_bytes_per_leaf <= 0:
            raise ValueError("max_bytes_per_leaf must be positive")


@dataclass
class RetentionReport:
    """What one enforcement pass dropped."""

    rows_dropped_by_age: int = 0
    rows_dropped_by_size: int = 0
    tables_touched: int = 0
    leaves_skipped: int = 0

    @property
    def rows_dropped(self) -> int:
        return self.rows_dropped_by_age + self.rows_dropped_by_size


@dataclass
class RetentionEnforcer:
    """Applies per-table retention policies across leaves.

    Tables without a policy fall back to ``default_policy`` when one is
    set; otherwise they are left alone.  Leaves that are not ALIVE are
    skipped (Scuba "stops deleting expired table data once shutdown
    starts", Figure 5 caption) and counted in the report.
    """

    policies: dict[str, RetentionPolicy] = field(default_factory=dict)
    default_policy: RetentionPolicy | None = None

    def set_policy(self, table: str, policy: RetentionPolicy) -> None:
        self.policies[table] = policy

    def policy_for(self, table: str) -> RetentionPolicy | None:
        return self.policies.get(table, self.default_policy)

    def enforce_on_leaf(self, leaf: LeafServer) -> RetentionReport:
        """One pass over one leaf; raises if the leaf is mid-shutdown
        per the table state machine rules — callers wanting the skip
        behaviour use :meth:`enforce`."""
        report = RetentionReport()
        now = int(leaf.clock.now())
        for table in leaf.leafmap:
            policy = self.policy_for(table.name)
            if policy is None:
                continue
            report.tables_touched += 1
            if policy.max_age_seconds is not None:
                cutoff = now - policy.max_age_seconds
                dropped = table.expire_before(cutoff)
                report.rows_dropped_by_age += dropped
                leaf.backup.record_expiry(
                    table.name, cutoff, rows_expired=table.total_rows_expired
                )
            if policy.max_bytes_per_leaf is not None:
                report.rows_dropped_by_size += table.enforce_size_limit(
                    policy.max_bytes_per_leaf
                )
        return report

    def enforce(self, leaves: list[LeafServer]) -> RetentionReport:
        """Enforce everywhere; non-ALIVE leaves are skipped, not failed."""
        total = RetentionReport()
        for leaf in leaves:
            if not leaf.is_alive:
                total.leaves_skipped += 1
                continue
            try:
                report = self.enforce_on_leaf(leaf)
            except StateError:
                total.leaves_skipped += 1
                continue
            total.rows_dropped_by_age += report.rows_dropped_by_age
            total.rows_dropped_by_size += report.rows_dropped_by_size
            total.tables_touched += report.tables_touched
        return total
