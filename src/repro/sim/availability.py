"""Availability arithmetic (experiment E4).

The paper's headline: "instead of having 100% of the data available only
93% of the time with a 12 hour rollover once a week, Scuba is now fully
available 99.5% of the time."  That metric is the fraction of the week
during which *no* rollover is in progress; during a rollover, ~98% of
data remains available (2% of leaves restarting).
"""

from __future__ import annotations

from dataclasses import dataclass

WEEK_SECONDS = 7 * 24 * 3600.0


@dataclass(frozen=True)
class AvailabilityReport:
    """Weekly availability under a periodic rollover schedule."""

    rollover_seconds: float
    rollovers_per_week: float
    availability_during_rollover: float

    @property
    def fully_available_fraction(self) -> float:
        """Fraction of time with 100% of data available (paper's metric)."""
        busy = min(WEEK_SECONDS, self.rollover_seconds * self.rollovers_per_week)
        return (WEEK_SECONDS - busy) / WEEK_SECONDS

    @property
    def mean_data_availability(self) -> float:
        """Time-weighted average fraction of data available."""
        busy = min(WEEK_SECONDS, self.rollover_seconds * self.rollovers_per_week)
        return (
            (WEEK_SECONDS - busy) * 1.0
            + busy * self.availability_during_rollover
        ) / WEEK_SECONDS


def weekly_availability(
    rollover_seconds: float,
    rollovers_per_week: float = 1.0,
    availability_during_rollover: float = 0.98,
) -> AvailabilityReport:
    """Weekly availability for a deploy cadence (defaults: paper's)."""
    if rollover_seconds < 0:
        raise ValueError("rollover duration cannot be negative")
    if rollovers_per_week < 0:
        raise ValueError("rollover cadence cannot be negative")
    if not 0 <= availability_during_rollover <= 1:
        raise ValueError("availability must be a fraction")
    return AvailabilityReport(
        rollover_seconds, rollovers_per_week, availability_during_rollover
    )
