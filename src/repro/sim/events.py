"""A minimal discrete-event scheduler.

Events are ``(time, sequence, callback)`` triples on a heap; the sequence
number breaks ties deterministically in scheduling order, so simulations
are exactly reproducible.
"""

from __future__ import annotations

import heapq
from typing import Callable


class EventQueue:
    """Run callbacks at simulated times."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._seq = 0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at ``now + delay``."""
        if delay < 0:
            raise ValueError(f"cannot schedule {delay} seconds in the past")
        heapq.heappush(self._heap, (self._now + delay, self._seq, callback))
        self._seq += 1

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        self.schedule(when - self._now, callback)

    @property
    def pending(self) -> int:
        return len(self._heap)

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        if not self._heap:
            return False
        when, _, callback = heapq.heappop(self._heap)
        self._now = when
        callback()
        return True

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> float:
        """Drain the queue (optionally stopping at time ``until``).

        Returns the final simulated time.  ``max_events`` guards against
        runaway feedback loops in buggy simulations.
        """
        events = 0
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self._now = until
                break
            if events >= max_events:
                raise RuntimeError(f"simulation exceeded {max_events} events")
            self.step()
            events += 1
        return self._now
