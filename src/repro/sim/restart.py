"""Single-leaf and single-machine restart timings (experiments E1, E2).

These are closed-form applications of the hardware profile — the paper's
per-machine quotes do not need event scheduling, only the contention
model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.hardware import HardwareProfile


@dataclass(frozen=True)
class LeafRestartBreakdown:
    """Phase-by-phase timing of one leaf restart."""

    method: str
    read_seconds: float
    translate_seconds: float
    copy_out_seconds: float
    copy_in_seconds: float
    overhead_seconds: float
    #: Serve-while-restoring only: the copy-back that overlaps query
    #: service.  Not part of ``total_seconds`` — the leaf is up.
    background_fill_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return (
            self.read_seconds
            + self.translate_seconds
            + self.copy_out_seconds
            + self.copy_in_seconds
            + self.overhead_seconds
        )


def simulate_leaf_restart(
    profile: HardwareProfile,
    method: str = "shm",
    concurrent_on_machine: int = 1,
    replay_workers: int = 1,
    replay_backend: str = "process",
) -> LeafRestartBreakdown:
    """Timing for one leaf restarting with ``k`` peers on its machine.

    ``replay_workers`` > 1 fans the legacy translate stage across a
    replay pool (``method="disk"`` only): the CPU-bound decode+seal work
    shrinks by :meth:`HardwareProfile.parallel_replay_speedup`, the disk
    read and fixed overheads do not.
    """
    nbytes = profile.data_bytes_per_leaf
    if method == "disk":
        translate = profile.translate_seconds(nbytes, concurrent_on_machine)
        if replay_workers > 1:
            translate /= profile.parallel_replay_speedup(
                replay_workers, replay_backend
            )
        return LeafRestartBreakdown(
            method="disk",
            read_seconds=profile.disk_read_seconds(nbytes, concurrent_on_machine),
            translate_seconds=translate,
            copy_out_seconds=0.0,
            copy_in_seconds=0.0,
            overhead_seconds=profile.process_restart_overhead_s,
        )
    if method == "disk_snapshot":
        # The §6 fast tier: the disk file is the shm layout, so the
        # translate stage collapses to a bulk unpack.
        return LeafRestartBreakdown(
            method="disk_snapshot",
            read_seconds=profile.disk_read_seconds(nbytes, concurrent_on_machine),
            translate_seconds=profile.snapshot_translate_seconds(
                nbytes, concurrent_on_machine
            ),
            copy_out_seconds=0.0,
            copy_in_seconds=0.0,
            overhead_seconds=profile.process_restart_overhead_s,
        )
    if method == "replica":
        # The replica tier: no local disk involved — sealed blocks come
        # off a standby's wire session, and the per-column unpack
        # overlaps the fetch (the pipeline runs at the slower stage).
        nbytes = profile.data_bytes_per_leaf
        fetch = profile.replica_fetch_seconds(nbytes)
        unpack = profile.snapshot_translate_seconds(nbytes, 1)
        return LeafRestartBreakdown(
            method="replica",
            read_seconds=max(fetch, unpack),
            translate_seconds=0.0,
            copy_out_seconds=0.0,
            copy_in_seconds=0.0,
            overhead_seconds=(
                profile.replica_handshake_overhead_s
                + profile.process_restart_overhead_s
            ),
        )
    if method == "shm":
        return LeafRestartBreakdown(
            method="shm",
            read_seconds=0.0,
            translate_seconds=0.0,
            copy_out_seconds=profile.shm_shutdown_seconds(concurrent_on_machine),
            copy_in_seconds=profile.shm_restore_seconds(concurrent_on_machine),
            overhead_seconds=profile.process_restart_overhead_s,
        )
    if method == "shm_lazy":
        # Serve-while-restoring: the unavailability window ends at the
        # directory publish; the copy-back runs behind query service.
        return LeafRestartBreakdown(
            method="shm_lazy",
            read_seconds=0.0,
            translate_seconds=0.0,
            copy_out_seconds=profile.shm_shutdown_seconds(concurrent_on_machine),
            copy_in_seconds=profile.lazy_publish_overhead_s,
            overhead_seconds=profile.process_restart_overhead_s,
            background_fill_seconds=profile.shm_restore_seconds(
                concurrent_on_machine
            ),
        )
    raise ValueError(f"unknown restart method '{method}'")


@dataclass(frozen=True)
class MachineRecovery:
    """Timing for a whole machine's recovery."""

    method: str
    mode: str  # "all_at_once" or "sequential"
    leaves: int
    per_leaf_seconds: float
    total_seconds: float


def simulate_machine_recovery(
    profile: HardwareProfile,
    method: str = "disk",
    mode: str = "all_at_once",
) -> MachineRecovery:
    """A machine recovering all of its leaves.

    ``all_at_once`` restarts every leaf simultaneously (what happens
    after a power event, and the configuration the paper's "2.5-3 hours
    per machine" describes); ``sequential`` restarts them one at a time
    (the rolling-upgrade pattern, where each leaf gets the full disk).
    """
    n = profile.leaves_per_machine
    if mode == "all_at_once":
        breakdown = simulate_leaf_restart(profile, method, concurrent_on_machine=n)
        # Leaves run concurrently: the machine is done when each leaf's
        # (equal) contended restart finishes.
        return MachineRecovery(
            method, mode, n, breakdown.total_seconds, breakdown.total_seconds
        )
    if mode == "sequential":
        breakdown = simulate_leaf_restart(profile, method, concurrent_on_machine=1)
        return MachineRecovery(
            method, mode, n, breakdown.total_seconds, breakdown.total_seconds * n
        )
    raise ValueError(f"unknown recovery mode '{mode}'")
