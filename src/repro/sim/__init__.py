"""Full-scale simulation of restarts and rollovers.

The mechanisms in :mod:`repro.core` run for real at laptop scale; the
*times* the paper reports (2–3 minutes vs 2.5–3 hours per machine, under
an hour vs 10–12 hours per cluster) are bandwidth arithmetic over
Facebook's 2014 hardware.  This package reproduces those numbers with a
discrete-event simulation driven by a calibrated
:class:`~repro.sim.hardware.HardwareProfile`; the restart policy logic is
shared in spirit with :mod:`repro.cluster.rollover` (2% at a time, one
leaf per machine).
"""

from repro.sim.availability import weekly_availability
from repro.sim.events import EventQueue
from repro.sim.hardware import HardwareProfile, paper_profile
from repro.sim.restart import (
    simulate_leaf_restart,
    simulate_machine_recovery,
)
from repro.sim.rollover import SimRolloverResult, simulate_rollover

__all__ = [
    "EventQueue",
    "HardwareProfile",
    "SimRolloverResult",
    "paper_profile",
    "simulate_leaf_restart",
    "simulate_machine_recovery",
    "simulate_rollover",
    "weekly_availability",
]
