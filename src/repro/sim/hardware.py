"""The hardware cost model, calibrated to the paper's numbers.

The paper quotes, for one machine with 144 GB of RAM holding ~120 GB of
data across 8 leaf servers:

- reading 120 GB from local disk: 20–25 minutes          (§1)
- reading *and translating* it to heap format: 2.5–3 h   (§1, §4.5)
- copying one leaf to shared memory at shutdown: 3–4 s   (§4.3)
- memory recovery: "a few seconds per leaf"              (§4.3)
- one leaf's rollover slot via shared memory: 2–3 min,
  "including the time to detect that a leaf is done with
  recovery and then initiate rollover for the next one"  (§4.5)
- full-cluster rollover: 10–12 h from disk, under 1 h via
  shared memory, of which deployment software is ~40 min (§1, §6)

These are mutually consistent only if concurrent disk recoveries
*thrash*: a 2014 Scuba machine used spinning disks, so eight interleaved
sequential readers degrade aggregate bandwidth far below one reader's.
The model therefore gives disk reads a concurrency penalty
(``disk_bandwidth(k) = base / (1 + thrash * (k - 1))``), while the
CPU-bound translate step scales with a bounded number of effective cores
and memory copies share the machine's copy bandwidth.

Every parameter is an explicit dataclass field, so benchmarks can sweep
them (e.g. E12 swaps the translate stage out; the SSD variant of §6 sets
``disk_seek_thrash = 0``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

MB = 1e6
GB = 1e9
MINUTE = 60.0
HOUR = 3600.0


@dataclass(frozen=True)
class HardwareProfile:
    """Per-machine performance constants for the simulator."""

    # Data geometry (paper, Sections 1-2).
    machine_ram_gb: float = 144.0
    data_gb_per_machine: float = 120.0
    leaves_per_machine: int = 8

    # Disk: one local spinning disk per machine, shared by its leaves.
    disk_read_mbps: float = 90.0
    #: Aggregate-bandwidth degradation per extra concurrent reader.
    #: 0 = perfect sharing (SSD-like); 0.65 reproduces the 2014 numbers.
    disk_seek_thrash: float = 0.65

    # Disk-format -> heap-format translation (CPU bound).
    translate_mbps: float = 22.5
    #: Effective cores available to concurrent translations on a machine.
    translate_cores: float = 4.0

    # Snapshot-tier recovery: the disk file *is* the shm layout, so the
    # "translate" step is a bulk per-column unpack — memory-ish speed,
    # bounded by the same machine-wide copy ceiling as shm restores.
    snapshot_unpack_gbps: float = 2.0

    # Memory: heap<->shared-memory copy bandwidth.  A single copy stream
    # is CPU/latency bound at ``mem_copy_gbps``; the machine's memory
    # controllers saturate at ``mem_total_gbps``, so concurrent streams
    # scale linearly only until they hit the ceiling (experiment E15).
    mem_copy_gbps: float = 4.0
    mem_total_gbps: float = 16.0
    #: Effective concurrent copy streams an *in-process thread pool*
    #: achieves.  A CPython restart backend running bulk copies in
    #: threads holds the GIL for each memcpy slice, so no matter how
    #: many workers are configured the machine sees roughly one stream
    #: (the paper's C++ implementation has no such ceiling; the
    #: process-pool backend escapes it with one interpreter per worker).
    gil_copy_streams: float = 1.0

    # Incremental snapshot sync (§4.1: "only the sections of data that
    # have changed since the last synchronization point need to be
    # updated").  An append-mostly workload seals or expires only a
    # small fraction of a leaf's bytes between sync points; the delta
    # chain writes just that fraction, plus a full base rewrite every
    # ``snapshot_chain_links`` syncs when compaction folds the chain.
    snapshot_churn_fraction: float = 0.05
    snapshot_chain_links: int = 8

    # Parallel legacy replay.  Row decode + block sealing are pure-Python
    # CPU work: thread workers share one GIL (same ceiling story as
    # ``gil_copy_streams``), process workers scale to the translate
    # cores.  The parent's serial share — the raw chunk scan and the
    # in-order merge — bounds the speedup (Amdahl).
    gil_replay_streams: float = 1.0
    replay_serial_fraction: float = 0.08

    # Replica recovery tier: a restarting leaf pulls its sealed blocks
    # over the datacenter network from a standby on another machine, on
    # ``replica_streams`` concurrent TCP streams.  One stream is
    # latency/CPU bound well below the NIC; streams scale until they
    # saturate the host's usable network bandwidth.  The receiving side
    # still pays the bulk per-column unpack (same stage as the snapshot
    # tier), overlapped with the fetch.
    net_stream_gbps: float = 0.4
    net_total_gbps: float = 1.25
    replica_streams: int = 4
    #: Session setup: discovery, TCP connects, catalog exchange.
    replica_handshake_overhead_s: float = 0.3

    # Fixed overheads.
    process_restart_overhead_s: float = 12.0
    #: Serve-while-restoring: time to publish the block directory (map
    #: the segments, scan packed headers — no payload copies).  The leaf
    #: serves queries from this point; the restore copy continues in the
    #: background.
    lazy_publish_overhead_s: float = 0.5
    #: "time to detect that a leaf is done with recovery and then
    #: initiate rollover for the next one" (§4.5) — per rollover slot.
    detection_overhead_s: float = 115.0
    #: "The deployment software is responsible for about 40 minutes of
    #: overhead." (§6) — once per cluster rollover.
    deployment_overhead_s: float = 40.0 * MINUTE

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def data_bytes_per_leaf(self) -> float:
        return self.data_gb_per_machine * GB / self.leaves_per_machine

    def disk_aggregate_bps(self, concurrent_readers: int) -> float:
        """Aggregate disk bandwidth with ``k`` concurrent recoveries."""
        if concurrent_readers < 1:
            raise ValueError("need at least one reader")
        penalty = 1.0 + self.disk_seek_thrash * (concurrent_readers - 1)
        return self.disk_read_mbps * MB / penalty

    def disk_read_seconds(self, nbytes: float, concurrent_readers: int = 1) -> float:
        """Time for one leaf to read ``nbytes`` with ``k`` sharing the disk."""
        per_leaf = self.disk_aggregate_bps(concurrent_readers) / concurrent_readers
        return nbytes / per_leaf

    def translate_seconds(self, nbytes: float, concurrent: int = 1) -> float:
        """Time to translate ``nbytes`` disk->heap with ``m`` concurrent."""
        if concurrent < 1:
            raise ValueError("need at least one translator")
        share = min(1.0, self.translate_cores / concurrent)
        return nbytes / (self.translate_mbps * MB * share)

    def snapshot_translate_seconds(self, nbytes: float, concurrent: int = 1) -> float:
        """Bulk-unpack ``nbytes`` of shm-format disk bytes into the heap.

        Replaces the row-by-row ``translate_seconds`` stage when the
        snapshot tier runs: one bulk copy per row block column instead of
        re-encoding every row, so throughput is set by memory bandwidth,
        not by the CPU-bound translator.
        """
        if concurrent < 1:
            raise ValueError("need at least one unpacker")
        per_stream_gbps = min(
            self.snapshot_unpack_gbps, self.mem_total_gbps / concurrent
        )
        return nbytes / (per_stream_gbps * GB)

    def mem_copy_seconds(self, nbytes: float, concurrent: float = 1) -> float:
        """One direction of a heap<->shm copy with ``m`` leaves copying.

        Each stream runs at its single-stream rate until the machine's
        aggregate memory bandwidth is oversubscribed, then the streams
        share the ceiling fairly: ``min(mem_copy_gbps, mem_total / m)``
        per stream.  With the defaults, up to 4 concurrent copies are
        free and an 8-wide restart runs each stream at half speed —
        still a 4x machine-level speedup over sequential.
        """
        if concurrent < 1:
            raise ValueError("need at least one copier")
        per_stream_gbps = min(self.mem_copy_gbps, self.mem_total_gbps / concurrent)
        return nbytes / (per_stream_gbps * GB)

    def effective_copy_streams(self, workers: int, backend: str = "process") -> float:
        """Truly-concurrent copy streams ``workers`` workers achieve.

        ``"process"`` workers each own an interpreter, so every worker
        is a stream; ``"thread"`` workers share one GIL, capping the
        machine at ``gil_copy_streams`` no matter the pool width.
        """
        if workers < 1:
            raise ValueError("need at least one worker")
        if backend == "thread":
            return min(float(workers), self.gil_copy_streams)
        if backend == "process":
            return float(workers)
        raise ValueError(f"unknown restart backend {backend!r}")

    def parallel_restore_speedup(
        self, workers: int, backend: str = "process"
    ) -> float:
        """Machine-level speedup of restoring ``k`` leaves concurrently
        versus one at a time: linear in ``k`` until the memory-bandwidth
        ceiling, then flat at ``mem_total_gbps / mem_copy_gbps``.  For
        the thread backend the GIL is the first ceiling — with the
        default ``gil_copy_streams`` the curve is flat at ~1x, which is
        why ``backend="process"`` exists at all.
        """
        if workers < 1:
            raise ValueError("need at least one worker")
        nbytes = self.data_bytes_per_leaf
        streams = self.effective_copy_streams(workers, backend)
        sequential = workers * self.mem_copy_seconds(nbytes, 1)
        # `streams` concurrent copies at a time, workers/streams waves.
        parallel = (workers / streams) * self.mem_copy_seconds(nbytes, streams)
        return sequential / parallel

    # ------------------------------------------------------------------
    # Incremental sync and parallel replay
    # ------------------------------------------------------------------

    def incremental_sync_bytes(
        self,
        nbytes: float,
        churn: float | None = None,
        chain_links: int | None = None,
    ) -> float:
        """Amortized snapshot bytes written per sync point for a leaf
        holding ``nbytes``: the churned fraction as a delta, plus the
        base rewrite compaction pays once per ``chain_links`` syncs."""
        churn = self.snapshot_churn_fraction if churn is None else churn
        chain_links = (
            self.snapshot_chain_links if chain_links is None else chain_links
        )
        if not 0.0 <= churn <= 1.0:
            raise ValueError("churn must be a fraction in [0, 1]")
        if chain_links < 1:
            raise ValueError("need at least one chain link")
        return nbytes * (churn + 1.0 / chain_links)

    def incremental_sync_reduction(
        self, churn: float | None = None, chain_links: int | None = None
    ) -> float:
        """Full-rewrite sync bytes over incremental sync bytes — the
        write-amplification drop the delta chain buys.  The defaults
        (5% churn, 8-link chains) give ~5.7x, the floor E17 asserts."""
        return 1e9 / self.incremental_sync_bytes(1e9, churn, chain_links)

    def effective_replay_streams(self, workers: int, backend: str = "process") -> float:
        """Truly-concurrent replay streams ``workers`` workers achieve.

        Decode and seal are CPU-bound pure Python: thread workers are
        capped by the GIL at ``gil_replay_streams``, process workers by
        the machine's translate cores."""
        if workers < 1:
            raise ValueError("need at least one worker")
        if backend == "thread":
            return min(float(workers), self.gil_replay_streams)
        if backend == "process":
            return min(float(workers), self.translate_cores)
        raise ValueError(f"unknown replay backend {backend!r}")

    def parallel_replay_speedup(self, workers: int, backend: str = "process") -> float:
        """Speedup of the legacy translate stage with ``workers`` replay
        workers: Amdahl over the parent's serial chunk scan and merge,
        with the parallel share divided across the effective streams."""
        streams = self.effective_replay_streams(workers, backend)
        serial = self.replay_serial_fraction
        return 1.0 / (serial + (1.0 - serial) / streams)

    # ------------------------------------------------------------------
    # Replica recovery tier
    # ------------------------------------------------------------------

    def replica_fetch_seconds(self, nbytes: float, streams: int | None = None) -> float:
        """Pull ``nbytes`` off a standby over ``streams`` pipelined TCP
        streams: each stream runs at its single-stream rate until the
        host NIC saturates, then they share the ceiling fairly."""
        streams = self.replica_streams if streams is None else streams
        if streams < 1:
            raise ValueError("need at least one stream")
        aggregate = min(self.net_total_gbps, streams * self.net_stream_gbps)
        return nbytes / (aggregate * GB)

    def replica_restart_seconds(self, streams: int | None = None) -> float:
        """One leaf's replica-tier recovery: handshake, then the wire
        fetch overlapped with the bulk per-column unpack (the pipeline
        runs at the slower of the two), plus process overhead.  No local
        disk read at all — the tier exists for exactly the case where
        the disk path would cost 20+ minutes."""
        nbytes = self.data_bytes_per_leaf
        fetch = self.replica_fetch_seconds(nbytes, streams)
        unpack = self.snapshot_translate_seconds(nbytes, 1)
        return (
            self.replica_handshake_overhead_s
            + max(fetch, unpack)
            + self.process_restart_overhead_s
        )

    def replica_restore_speedup(self, concurrent_on_machine: int = 1) -> float:
        """Replica-tier recovery versus the *snapshot* disk tier — the
        best disk rung, so the floor of what the wire buys.  With ``k``
        leaves of the same machine recovering at once the disk thrashes
        while each leaf's wire session has its own remote standby, so
        the ratio grows with ``k``."""
        return self.disk_snapshot_restart_seconds(
            concurrent_on_machine
        ) / self.replica_restart_seconds()

    # ------------------------------------------------------------------
    # Restart durations (per leaf)
    # ------------------------------------------------------------------

    def disk_restart_seconds(self, concurrent_on_machine: int = 1) -> float:
        """One leaf's full disk recovery: read + translate + overhead."""
        nbytes = self.data_bytes_per_leaf
        return (
            self.disk_read_seconds(nbytes, concurrent_on_machine)
            + self.translate_seconds(nbytes, concurrent_on_machine)
            + self.process_restart_overhead_s
        )

    def disk_snapshot_restart_seconds(self, concurrent_on_machine: int = 1) -> float:
        """One leaf's snapshot-tier disk recovery: read + bulk unpack.

        Same disk contention as legacy recovery (the bytes still come off
        the spindle), but the translate stage collapses to a near-copy.
        """
        nbytes = self.data_bytes_per_leaf
        return (
            self.disk_read_seconds(nbytes, concurrent_on_machine)
            + self.snapshot_translate_seconds(nbytes, concurrent_on_machine)
            + self.process_restart_overhead_s
        )

    def shm_shutdown_seconds(self, concurrent_on_machine: int = 1) -> float:
        """Copy-to-shared-memory at shutdown (paper: 3-4 s)."""
        return self.mem_copy_seconds(self.data_bytes_per_leaf, concurrent_on_machine)

    def shm_restore_seconds(self, concurrent_on_machine: int = 1) -> float:
        """Copy-back at startup ("a few seconds per leaf")."""
        return self.mem_copy_seconds(self.data_bytes_per_leaf, concurrent_on_machine)

    def shm_restart_seconds(self, concurrent_on_machine: int = 1) -> float:
        """One leaf's offline window via shared memory."""
        return (
            self.shm_shutdown_seconds(concurrent_on_machine)
            + self.shm_restore_seconds(concurrent_on_machine)
            + self.process_restart_overhead_s
        )

    def shm_lazy_restart_seconds(self, concurrent_on_machine: int = 1) -> float:
        """One leaf's *unavailability* window with serve-while-restoring:
        the shutdown copy still happens up front, but the restore side
        collapses to the directory publish — the copy-back overlaps with
        query service instead of blocking it."""
        return (
            self.shm_shutdown_seconds(concurrent_on_machine)
            + self.lazy_publish_overhead_s
            + self.process_restart_overhead_s
        )

    def with_ssd(self) -> "HardwareProfile":
        """The §6 thought experiment: solid-state storage (no seek
        thrash, ~5x sequential bandwidth)."""
        return replace(self, disk_read_mbps=450.0, disk_seek_thrash=0.0)

    def with_shm_disk_format(self) -> "HardwareProfile":
        """The §6 plan measured as E12: the disk holds the shared memory
        layout, so translation becomes a near-copy at memory-ish speed."""
        return replace(self, translate_mbps=1000.0)


def paper_profile() -> HardwareProfile:
    """The default, paper-calibrated profile."""
    return HardwareProfile()
