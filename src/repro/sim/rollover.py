"""Discrete-event simulation of a full-cluster rollover (Figure 8, E3).

Policy, per the paper:

- at most ``batch_fraction`` (default 2%) of all leaves restarting at any
  instant,
- at most one leaf per machine restarting at a time (each restarting
  leaf gets the machine's full disk/memory bandwidth),
- a restart *slot* is the leaf's offline window plus the coordinator's
  detection/initiation overhead; with ``pipelined_detection`` the next
  restart on another machine can begin while detection of the previous
  one is still pending (what Scuba's deployment tooling effectively
  does — without it, shared-memory rollovers could not finish inside an
  hour).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.cluster.dashboard import Dashboard
from repro.sim.events import EventQueue
from repro.sim.hardware import HardwareProfile


@dataclass
class SimRolloverResult:
    """Outcome of one simulated rollover."""

    strategy: str
    n_machines: int
    leaves_total: int
    batch_size: int
    restart_seconds: float = 0.0  # first shutdown -> last leaf back online
    total_seconds: float = 0.0  # including deployment-software overhead
    per_leaf_offline_seconds: float = 0.0
    mean_availability: float = 1.0
    min_availability: float = 1.0
    stragglers: int = 0  # leaves whose shm copy failed -> disk recovery
    dashboard: Dashboard = field(default_factory=Dashboard)


@dataclass
class _MachineState:
    remaining: int  # leaves still on the old version
    busy: bool = False  # a leaf of this machine is mid-restart


def simulate_rollover(
    profile: HardwareProfile,
    n_machines: int = 100,
    strategy: str = "shm",
    batch_fraction: float = 0.02,
    pipelined_detection: bool = True,
    sample_every_slots: int = 1,
    shm_failure_rate: float = 0.0,
    seed: int = 0,
) -> SimRolloverResult:
    """Simulate upgrading every leaf of the cluster.

    ``shm_failure_rate`` models stragglers: the fraction of shared
    memory shutdowns that overrun the §4.3 deadline and are killed, so
    the replacement pays the full disk recovery instead.  Even a few
    percent of stragglers stretches an shm rollover's tail — the reason
    the deploy tooling monitors for them (cluster.monitor).

    Returns timings, availability statistics, and a Figure-8 dashboard
    series.
    """
    if strategy not in ("shm", "disk"):
        raise ValueError(f"unknown rollover strategy '{strategy}'")
    if not 0 < batch_fraction <= 1:
        raise ValueError("batch fraction must be in (0, 1]")
    if not 0 <= shm_failure_rate <= 1:
        raise ValueError("shm failure rate must be a fraction")
    leaves_per_machine = profile.leaves_per_machine
    total_leaves = n_machines * leaves_per_machine
    batch_size = max(1, round(total_leaves * batch_fraction))

    if strategy == "disk":
        offline = profile.disk_restart_seconds(concurrent_on_machine=1)
    else:
        offline = profile.shm_restart_seconds(concurrent_on_machine=1)
    straggler_offline = profile.disk_restart_seconds(concurrent_on_machine=1)
    detection = profile.detection_overhead_s
    rng = random.Random(seed)

    queue = EventQueue()
    machines = [_MachineState(remaining=leaves_per_machine) for _ in range(n_machines)]
    state = {
        "offline_now": 0,
        "active_slots": 0,
        "upgraded": 0,
        "offline_leaf_seconds": 0.0,
        "max_offline": 0,
        "last_online_time": 0.0,
        "restarts_started": 0,
        "rr_cursor": 0,
    }
    result = SimRolloverResult(
        strategy=strategy,
        n_machines=n_machines,
        leaves_total=total_leaves,
        batch_size=batch_size,
        per_leaf_offline_seconds=offline,
    )

    def sample() -> None:
        rolling = state["offline_now"]
        new = state["upgraded"]
        old = total_leaves - rolling - new
        availability = 1.0 - rolling / total_leaves
        result.dashboard.record(queue.now, old, rolling, new, availability)
        result.min_availability = min(result.min_availability, availability)

    def try_start() -> None:
        # Round-robin over machines: spreading restarts across the fleet
        # keeps per-machine serialization (a machine restarts its leaves
        # one at a time) off the critical path.
        n = len(machines)
        for step in range(n):
            if state["active_slots"] >= batch_size:
                return
            machine = machines[(state["rr_cursor"] + step) % n]
            if machine.busy or machine.remaining == 0:
                continue
            state["rr_cursor"] = (state["rr_cursor"] + step + 1) % n
            machine.busy = True
            machine.remaining -= 1
            state["active_slots"] += 1
            state["offline_now"] += 1
            state["max_offline"] = max(state["max_offline"], state["offline_now"])
            duration = offline
            if (
                strategy == "shm"
                and shm_failure_rate > 0
                and rng.random() < shm_failure_rate
            ):
                # Copy overran the deadline: killed, disk recovery.
                duration = straggler_offline
                result.stragglers += 1
            state["offline_leaf_seconds"] += duration
            state["restarts_started"] += 1
            if state["restarts_started"] % max(1, sample_every_slots) == 0:
                sample()
            queue.schedule(duration, lambda m=machine: leaf_online(m))

    def leaf_online(machine: _MachineState) -> None:
        state["offline_now"] -= 1
        state["upgraded"] += 1
        state["last_online_time"] = queue.now
        if pipelined_detection:
            # The slot is considered free for *other machines* right
            # away; this machine still waits out detection before its
            # next leaf restarts.
            state["active_slots"] -= 1
            try_start()
            queue.schedule(detection, lambda m=machine: machine_free(m, False))
        else:
            queue.schedule(detection, lambda m=machine: machine_free(m, True))

    def machine_free(machine: _MachineState, release_slot: bool) -> None:
        machine.busy = False
        if release_slot:
            state["active_slots"] -= 1
        try_start()

    sample()
    try_start()
    queue.run()
    sample()
    assert state["upgraded"] == total_leaves

    restart_span = state["last_online_time"]
    result.restart_seconds = restart_span
    result.total_seconds = restart_span + profile.deployment_overhead_s
    if restart_span > 0:
        result.mean_availability = 1.0 - state["offline_leaf_seconds"] / (
            restart_span * total_leaves
        )
    return result
