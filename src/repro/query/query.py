"""Query descriptions and results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import QueryError
from repro.types import ColumnValue

#: Supported aggregation functions.
AGG_FUNCS = ("count", "sum", "avg", "min", "max", "p50", "p90", "p95", "p99")

#: Supported filter operators.
FILTER_OPS = ("eq", "ne", "lt", "le", "gt", "ge", "in", "contains")


@dataclass(frozen=True)
class Filter:
    """A predicate on one column.

    ``contains`` tests membership in a STRING_VECTOR column; ``in`` tests
    the column value against a collection of candidates.
    """

    column: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in FILTER_OPS:
            raise QueryError(f"unknown filter operator '{self.op}'")

    def to_dict(self) -> dict:
        """JSON-safe form (for the process RPC protocol)."""
        value = self.value
        if isinstance(value, tuple):
            value = list(value)
        return {"column": self.column, "op": self.op, "value": value}

    @classmethod
    def from_dict(cls, data: dict) -> "Filter":
        value = data["value"]
        if isinstance(value, list) and data["op"] == "in":
            value = tuple(value)
        return cls(data["column"], data["op"], value)

    def matches(self, row: dict[str, ColumnValue]) -> bool:
        if self.column not in row:
            return False
        actual = row[self.column]
        if self.op == "eq":
            return actual == self.value
        if self.op == "ne":
            return actual != self.value
        if self.op == "lt":
            return actual < self.value
        if self.op == "le":
            return actual <= self.value
        if self.op == "gt":
            return actual > self.value
        if self.op == "ge":
            return actual >= self.value
        if self.op == "in":
            return actual in self.value
        # contains
        if not isinstance(actual, list):
            raise QueryError(
                f"'contains' requires a STRING_VECTOR column, and "
                f"'{self.column}' holds {type(actual).__name__}"
            )
        return self.value in actual


@dataclass(frozen=True)
class Aggregation:
    """One aggregation: a function over a column.

    ``count`` ignores its column (pass ``"*"`` by convention).
    """

    func: str
    column: str = "*"

    def __post_init__(self) -> None:
        if self.func not in AGG_FUNCS:
            raise QueryError(f"unknown aggregation function '{self.func}'")
        if self.func != "count" and self.column == "*":
            raise QueryError(f"aggregation '{self.func}' needs a column")

    @property
    def label(self) -> str:
        return f"{self.func}({self.column})"

    def to_dict(self) -> dict:
        return {"func": self.func, "column": self.column}

    @classmethod
    def from_dict(cls, data: dict) -> "Aggregation":
        return cls(data["func"], data["column"])


@dataclass(frozen=True)
class Query:
    """An aggregation query over one table.

    ``start_time``/``end_time`` bound the required ``time`` column as a
    half-open interval ``[start, end)`` — "nearly all queries contain
    predicates on time" (paper, Section 2.1).
    """

    table: str
    aggregations: tuple[Aggregation, ...] = (Aggregation("count"),)
    group_by: tuple[str, ...] = ()
    filters: tuple[Filter, ...] = ()
    start_time: int | None = None
    end_time: int | None = None
    limit: int | None = None
    #: Time-series mode (the Scuba GUI's default view): rows are
    #: additionally grouped into ``bucket_seconds``-wide time buckets,
    #: which appear as the first element of each result group key.
    bucket_seconds: int | None = None
    #: Sort the result rows by this aggregation label (e.g.
    #: ``"count(*)"``) instead of by group key; with ``limit`` this is a
    #: top-k query.
    order_by: str | None = None
    descending: bool = True

    def __post_init__(self) -> None:
        if not self.table:
            raise QueryError("query needs a table name")
        if not self.aggregations:
            raise QueryError("query needs at least one aggregation")
        if self.limit is not None and self.limit < 1:
            raise QueryError("limit must be positive")
        if self.bucket_seconds is not None and self.bucket_seconds < 1:
            raise QueryError("bucket_seconds must be positive")
        if self.order_by is not None:
            labels = [agg.label for agg in self.aggregations]
            if self.order_by not in labels:
                raise QueryError(
                    f"order_by '{self.order_by}' is not an aggregation of "
                    f"this query ({', '.join(labels)})"
                )

    def to_dict(self) -> dict:
        """JSON-safe form (for the process RPC protocol)."""
        return {
            "table": self.table,
            "aggregations": [agg.to_dict() for agg in self.aggregations],
            "group_by": list(self.group_by),
            "filters": [f.to_dict() for f in self.filters],
            "start_time": self.start_time,
            "end_time": self.end_time,
            "limit": self.limit,
            "bucket_seconds": self.bucket_seconds,
            "order_by": self.order_by,
            "descending": self.descending,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Query":
        return cls(
            table=data["table"],
            aggregations=tuple(
                Aggregation.from_dict(a) for a in data["aggregations"]
            ),
            group_by=tuple(data.get("group_by", ())),
            filters=tuple(Filter.from_dict(f) for f in data.get("filters", ())),
            start_time=data.get("start_time"),
            end_time=data.get("end_time"),
            limit=data.get("limit"),
            bucket_seconds=data.get("bucket_seconds"),
            order_by=data.get("order_by"),
            descending=data.get("descending", True),
        )


@dataclass
class ResultRow:
    """One output row: the group key plus aggregate values."""

    group: tuple[ColumnValue, ...]
    values: dict[str, ColumnValue]


@dataclass
class QueryResult:
    """A (possibly partial) query result.

    ``leaves_responded`` / ``leaves_total`` quantify partiality: Scuba's
    GUI shows users what fraction of data their answer covers.
    """

    rows: list[ResultRow] = field(default_factory=list)
    leaves_responded: int = 0
    leaves_total: int = 0
    rows_scanned: int = 0
    blocks_pruned: int = 0

    @property
    def coverage(self) -> float:
        """Fraction of leaves that contributed (1.0 = complete result)."""
        if self.leaves_total == 0:
            return 1.0
        return self.leaves_responded / self.leaves_total

    def row_for(self, *group: ColumnValue) -> ResultRow:
        """Find the result row for a group key (test convenience)."""
        for row in self.rows:
            if row.group == tuple(group):
                return row
        raise KeyError(f"no result row for group {group!r}")
