"""Query engine.

Scuba queries are interactive aggregations — count/sum/min/max/avg and
percentiles, grouped by columns, nearly always with a predicate on
``time`` (paper, Sections 1–2).  The engine here mirrors that shape:

- :class:`Query` describes an aggregation over one table,
- :func:`execute_on_leaf` runs it against a leaf's :class:`LeafMap`,
  using row-block min/max-timestamp pruning,
- :func:`merge_leaf_results` combines per-leaf partial states, which is
  what aggregator servers do, including over a *partial* set of leaves
  (Scuba "can and does return partial query results when not all servers
  are available").
"""

from repro.query.aggregate import AggState, merge_leaf_results
from repro.query.execute import execute_on_leaf, execute_on_leaf_rows
from repro.query.query import Aggregation, Filter, Query, QueryResult, ResultRow
from repro.query.render import render_table, render_timeseries

__all__ = [
    "AggState",
    "Aggregation",
    "Filter",
    "Query",
    "QueryResult",
    "ResultRow",
    "execute_on_leaf",
    "execute_on_leaf_rows",
    "merge_leaf_results",
    "render_table",
    "render_timeseries",
]
