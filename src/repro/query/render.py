"""ASCII rendering of query results — a terminal stand-in for the Scuba
GUI's tables and time-series charts (paper, Figure 1: "Scuba GUI ...
visualize the results").
"""

from __future__ import annotations

from repro.query.query import QueryResult

_BARS = " ▁▂▃▄▅▆▇█"


def render_table(result: QueryResult, max_rows: int = 20) -> str:
    """The grouped result as an aligned text table."""
    if not result.rows:
        return "(empty result)"
    agg_labels = list(result.rows[0].values)
    group_width = max(
        (len(", ".join(str(v) for v in row.group)) for row in result.rows),
        default=5,
    )
    group_width = max(group_width, 5)
    header = f"{'group':<{group_width}}  " + "  ".join(
        f"{label:>14}" for label in agg_labels
    )
    lines = [header, "-" * len(header)]
    for row in result.rows[:max_rows]:
        group = ", ".join(str(v) for v in row.group) or "(all)"
        cells = []
        for label in agg_labels:
            value = row.values[label]
            if isinstance(value, float):
                cells.append(f"{value:>14.3f}")
            else:
                cells.append(f"{str(value):>14}")
        lines.append(f"{group:<{group_width}}  " + "  ".join(cells))
    if len(result.rows) > max_rows:
        lines.append(f"... {len(result.rows) - max_rows} more rows")
    if result.coverage < 1.0:
        lines.append(
            f"(partial result: {result.leaves_responded}/{result.leaves_total} "
            f"leaves responded)"
        )
    return "\n".join(lines)


def render_timeseries(
    result: QueryResult, value_label: str, width: int = 60
) -> str:
    """A sparkline per series from a time-bucketed query result.

    The query must have used ``bucket_seconds``: each result group's
    first element is the bucket timestamp and the rest identify the
    series.  Missing buckets render as gaps (space).
    """
    if not result.rows:
        return "(empty result)"
    series: dict[tuple, dict[int, float]] = {}
    buckets: set[int] = set()
    for row in result.rows:
        bucket = row.group[0]
        if not isinstance(bucket, int):
            raise ValueError(
                "render_timeseries needs a bucket_seconds query result "
                "(integer time bucket first in each group key)"
            )
        key = row.group[1:]
        value = row.values.get(value_label)
        if value is None:
            continue
        series.setdefault(key, {})[bucket] = float(value)
        buckets.add(bucket)
    if not buckets:
        return "(no data points)"
    ordered = sorted(buckets)
    if len(ordered) > width:
        step = (len(ordered) - 1) / (width - 1)
        ordered = [ordered[round(i * step)] for i in range(width)]
    lines = []
    for key in sorted(series, key=str):
        points = series[key]
        values = [points.get(bucket) for bucket in ordered]
        present = [v for v in values if v is not None]
        low = min(present)
        high = max(present)
        span = (high - low) or 1.0
        chars = []
        for value in values:
            if value is None:
                chars.append(" ")
            else:
                index = 1 + round((value - low) / span * (len(_BARS) - 2))
                chars.append(_BARS[index])
        label = ", ".join(str(v) for v in key) or "(all)"
        lines.append(f"{label:>16} |{''.join(chars)}| {low:g}..{high:g}")
    return "\n".join(lines)
