"""Mergeable aggregation state.

Leaves compute partial aggregates; aggregator servers merge them "as they
arrive from the leaves" (paper, Section 2).  Every aggregate is therefore
represented as a *mergeable state*: count and sum are trivially additive,
avg carries (sum, count), min/max fold, and percentiles carry their
sample values (exact at this library's scale; a production system would
ship a quantile sketch, which would change none of the interfaces).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.query.query import Query, QueryResult, ResultRow
from repro.types import ColumnValue


@dataclass
class AggState:
    """Mergeable partial state for one aggregation in one group."""

    func: str
    count: int = 0
    total: float = 0.0
    minimum: float | None = None
    maximum: float | None = None
    samples: list[float] = field(default_factory=list)

    def update(self, value: ColumnValue | None) -> None:
        """Fold one row's value into the state."""
        if self.func == "count":
            self.count += 1
            return
        if value is None:
            return
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise QueryError(
                f"aggregation '{self.func}' requires numeric values, got "
                f"{type(value).__name__}"
            )
        number = float(value)
        self.count += 1
        self.total += number
        self.minimum = number if self.minimum is None else min(self.minimum, number)
        self.maximum = number if self.maximum is None else max(self.maximum, number)
        if self.func.startswith("p"):
            self.samples.append(number)

    def merge(self, other: "AggState") -> None:
        """Fold another leaf's partial state into this one."""
        if other.func != self.func:
            raise QueryError(
                f"cannot merge aggregate states '{self.func}' and '{other.func}'"
            )
        self.count += other.count
        self.total += other.total
        if other.minimum is not None:
            self.minimum = (
                other.minimum
                if self.minimum is None
                else min(self.minimum, other.minimum)
            )
        if other.maximum is not None:
            self.maximum = (
                other.maximum
                if self.maximum is None
                else max(self.maximum, other.maximum)
            )
        self.samples.extend(other.samples)

    def to_dict(self) -> dict:
        """JSON-safe form (for shipping partials between processes)."""
        return {
            "func": self.func,
            "count": self.count,
            "total": self.total,
            "minimum": self.minimum,
            "maximum": self.maximum,
            "samples": list(self.samples),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AggState":
        return cls(
            func=data["func"],
            count=data["count"],
            total=data["total"],
            minimum=data["minimum"],
            maximum=data["maximum"],
            samples=list(data["samples"]),
        )

    def finalize(self) -> ColumnValue | None:
        """The user-facing value of this aggregate."""
        if self.func == "count":
            return self.count
        if self.count == 0:
            return None
        if self.func == "sum":
            return self.total
        if self.func == "avg":
            return self.total / self.count
        if self.func == "min":
            return self.minimum
        if self.func == "max":
            return self.maximum
        # Percentiles: nearest-rank on the collected samples.
        fraction = int(self.func[1:]) / 100.0
        ordered = sorted(self.samples)
        rank = max(0, min(len(ordered) - 1, math.ceil(fraction * len(ordered)) - 1))
        return ordered[rank]


#: A leaf's partial result: group key -> list of states, one per
#: aggregation, in query order.
LeafPartial = dict[tuple, list[AggState]]


def new_states(query: Query) -> list[AggState]:
    return [AggState(agg.func) for agg in query.aggregations]


def partial_to_wire(partial: LeafPartial) -> list[dict]:
    """Serialize a leaf partial for the process RPC protocol.

    Group keys are tuples of column values; they travel as lists and are
    rebuilt as tuples on the other side.
    """
    return [
        {"group": list(group), "states": [state.to_dict() for state in states]}
        for group, states in partial.items()
    ]


def partial_from_wire(wire: list[dict]) -> LeafPartial:
    """Inverse of :func:`partial_to_wire`."""
    return {
        _group_key(entry["group"]): [
            AggState.from_dict(state) for state in entry["states"]
        ]
        for entry in wire
    }


def _group_key(items: list) -> tuple:
    return tuple(tuple(item) if isinstance(item, list) else item for item in items)


def merge_leaf_results(
    query: Query,
    partials: list[LeafPartial],
    leaves_total: int,
    rows_scanned: int = 0,
    blocks_pruned: int = 0,
) -> QueryResult:
    """Merge per-leaf partial states into the final result.

    ``len(partials)`` is the number of leaves that responded; the result
    records it against ``leaves_total`` so callers can see partiality.
    """
    merged: LeafPartial = {}
    for partial in partials:
        for group, states in partial.items():
            mine = merged.get(group)
            if mine is None:
                merged[group] = [
                    AggState(
                        state.func,
                        state.count,
                        state.total,
                        state.minimum,
                        state.maximum,
                        list(state.samples),
                    )
                    for state in states
                ]
            else:
                for target, incoming in zip(mine, states):
                    target.merge(incoming)
    rows = [
        ResultRow(
            group=group,
            values={
                agg.label: state.finalize()
                for agg, state in zip(query.aggregations, states)
            },
        )
        for group, states in merged.items()
    ]
    if query.order_by is not None:
        # Top-k ordering by an aggregate value; ties and None-valued
        # aggregates fall back to group-key order for determinism.
        rows.sort(key=lambda row: _sort_key(row.group))
        rows.sort(
            key=lambda row: _order_key(row.values[query.order_by]),
            reverse=query.descending,
        )
    else:
        rows.sort(key=lambda row: _sort_key(row.group))
    if query.limit is not None:
        rows = rows[: query.limit]
    return QueryResult(
        rows=rows,
        leaves_responded=len(partials),
        leaves_total=leaves_total,
        rows_scanned=rows_scanned,
        blocks_pruned=blocks_pruned,
    )


def _sort_key(group: tuple) -> tuple:
    """Stable cross-type ordering for group keys."""
    return tuple((type(item).__name__, item) for item in group)


def _order_key(value) -> tuple:
    """Sort key for order_by values; None sorts below any number."""
    if value is None:
        return (0, 0.0)
    return (1, float(value))
