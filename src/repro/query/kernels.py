"""Vectorized query kernels over :class:`DecodedColumn` arrays.

Every kernel here mirrors the row path (``Filter.matches`` plus the
per-row fold in ``execute.py``) exactly — same verdicts, same error
types, same error messages — just evaluated a block at a time:

- Time-range and filter predicates produce boolean masks over a block's
  rows.  String predicates are evaluated once per *dictionary entry*
  (reusing ``Filter.matches`` on a one-key row, so semantics can't
  drift) and broadcast through the code array.
- Group-by columns are factorized to small integer codes; multi-column
  keys combine via ``np.unique(axis=0)``.
- Grouped reductions (count/sum/min/max plus percentile samples) run
  with ``bincount`` and ``reduceat`` and feed the existing mergeable
  :class:`~repro.query.aggregate.AggState` partials, so the aggregator
  and the process-RPC wire format are untouched.
"""

from __future__ import annotations

import operator

import numpy as np

from repro.compression.decoded import DecodedColumn, DecodedKind
from repro.errors import QueryError
from repro.query.query import Filter

_ORDER_OPS = {
    "lt": operator.lt,
    "le": operator.le,
    "gt": operator.gt,
    "ge": operator.ge,
}


# ----------------------------------------------------------------------
# Predicate masks
# ----------------------------------------------------------------------


def time_mask(
    times: np.ndarray, start_time: int | None, end_time: int | None
) -> np.ndarray:
    """Boolean mask of rows whose timestamp lies in ``[start, end)``."""
    mask = np.ones(times.size, dtype=bool)
    if start_time is not None:
        mask &= times >= start_time
    if end_time is not None:
        mask &= times < end_time
    return mask


def filter_mask(
    filt: Filter, decoded: DecodedColumn | None, n_rows: int
) -> np.ndarray:
    """Boolean mask of rows matching ``filt``.

    ``decoded`` is None when the block's schema lacks the column — the
    row path returns False for every operator then (including ``ne``),
    and so does this.
    """
    if decoded is None:
        return np.zeros(n_rows, dtype=bool)
    if decoded.kind is DecodedKind.NUMERIC:
        return _numeric_mask(filt, decoded.values)
    if decoded.kind is DecodedKind.DICT:
        return _dict_mask(filt, decoded)
    return _vector_mask(filt, decoded)


def _numeric_mask(filt: Filter, values: np.ndarray) -> np.ndarray:
    value = filt.value
    if filt.op == "contains":
        raise QueryError(
            f"'contains' requires a STRING_VECTOR column, and "
            f"'{filt.column}' holds {_numeric_typename(values.dtype)}"
        )
    if filt.op == "in":
        # Python's ``in`` would compare each candidate for equality; a
        # non-numeric candidate can never equal a number, so only the
        # numeric ones reach isin.  (A non-iterable value raises
        # TypeError here, as it does in the row path.)
        candidates = [c for c in value if isinstance(c, (int, float))]
        if not candidates:
            return np.zeros(values.size, dtype=bool)
        return np.isin(values, candidates)
    if filt.op in _ORDER_OPS:
        if not isinstance(value, (int, float)):
            # Ordering a number against a non-number raises in the row
            # path; reproduce the identical TypeError without a row loop.
            probe = 0 if np.issubdtype(values.dtype, np.integer) else 0.0
            _ORDER_OPS[filt.op](probe, value)
        return np.asarray(_ORDER_OPS[filt.op](values, value), dtype=bool)
    if not isinstance(value, (int, float)):
        # eq/ne against a non-number: never equal.
        verdict = filt.op == "ne"
        return np.full(values.size, verdict, dtype=bool)
    if filt.op == "eq":
        return np.asarray(values == value, dtype=bool)
    return np.asarray(values != value, dtype=bool)


def _dict_mask(filt: Filter, decoded: DecodedColumn) -> np.ndarray:
    # Evaluate the predicate once per dictionary entry — via the row
    # path's own Filter.matches, so substring ``in``, TypeErrors on
    # cross-type ordering, and the ``contains`` QueryError all behave
    # identically — then broadcast the verdicts through the codes.
    if not decoded.entries:
        return np.zeros(len(decoded), dtype=bool)
    verdicts = np.fromiter(
        (filt.matches({filt.column: entry}) for entry in decoded.entries),
        dtype=bool,
        count=len(decoded.entries),
    )
    return verdicts[decoded.codes]


def _vector_mask(filt: Filter, decoded: DecodedColumn) -> np.ndarray:
    n_rows = len(decoded)
    if filt.op == "contains" and isinstance(filt.value, str):
        try:
            target = decoded.entries.index(filt.value)
        except ValueError:
            return np.zeros(n_rows, dtype=bool)
        # CSR membership: count matches of the target id per row via a
        # cumulative sum over the flattened codes (safe for empty rows).
        hits = np.concatenate(([0], np.cumsum(decoded.codes == target)))
        per_row = hits[decoded.offsets[1:]] - hits[decoded.offsets[:-1]]
        return per_row > 0
    if filt.op == "contains":
        # A non-string can never be an element of a STRING_VECTOR.
        return np.zeros(n_rows, dtype=bool)
    # Other operators compare whole Python lists; rare enough that the
    # row path's semantics (list equality, list ordering, TypeErrors)
    # are reproduced by literally calling it per row.
    return np.fromiter(
        (
            filt.matches({filt.column: decoded.row_value(i)})
            for i in range(n_rows)
        ),
        dtype=bool,
        count=n_rows,
    )


def _numeric_typename(dtype: np.dtype) -> str:
    return "int" if np.issubdtype(dtype, np.integer) else "float"


# ----------------------------------------------------------------------
# Group-key factorization
# ----------------------------------------------------------------------


def factorize_values(values: np.ndarray) -> tuple[np.ndarray, list]:
    """``values`` → (small integer codes, label per code).

    Labels are Python scalars (``.item()``) so group keys built from
    them compare equal to the row path's dict values.
    """
    labels, codes = np.unique(values, return_inverse=True)
    return codes.reshape(-1).astype(np.int64, copy=False), [
        label.item() for label in labels
    ]


def factorize_column(
    decoded: DecodedColumn | None, sel: np.ndarray
) -> tuple[np.ndarray, list]:
    """Factorize one group-by column over the selected rows.

    A column missing from the block's schema groups every row under the
    key element ``None``, as ``row.get`` does in the row path.
    """
    if decoded is None:
        return np.zeros(sel.size, dtype=np.int64), [None]
    if decoded.kind is DecodedKind.NUMERIC:
        return factorize_values(decoded.values[sel])
    if decoded.kind is DecodedKind.DICT:
        return decoded.codes[sel].astype(np.int64, copy=False), list(
            decoded.entries
        )
    # STRING_VECTOR group keys are unhashable; the executor falls back
    # to the row path (which raises) before getting here.
    raise TypeError("unhashable type: 'list'")


def combine_groups(
    factors: list[tuple[np.ndarray, list]], n_selected: int
) -> tuple[np.ndarray, list[tuple]]:
    """Combine per-column factorizations into one group id per row.

    Returns ``(gids, keys)`` where ``gids[i]`` indexes ``keys`` and
    every group id in ``range(len(keys))`` occurs at least once.
    """
    if not factors:
        return np.zeros(n_selected, dtype=np.int64), [()]
    stacked = np.stack([codes for codes, _ in factors], axis=1)
    uniq, gids = np.unique(stacked, axis=0, return_inverse=True)
    keys = [
        tuple(factors[j][1][uniq[g, j]] for j in range(len(factors)))
        for g in range(uniq.shape[0])
    ]
    return gids.reshape(-1).astype(np.int64, copy=False), keys


# ----------------------------------------------------------------------
# Grouped reductions
# ----------------------------------------------------------------------


def grouped_reduce(
    gids: np.ndarray, n_groups: int, values: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-group count/sum/min/max over ``values``.

    Returns ``(counts, sums, mins, maxs, starts, sorted_values)``;
    group ``g``'s values occupy ``sorted_values[starts[g] : starts[g] +
    counts[g]]`` in original row order (the stable sort keys only on
    the group id), which is how percentile samples are sliced out.

    Requires every group id in ``range(n_groups)`` to occur (guaranteed
    by :func:`combine_groups`) — ``reduceat`` is undefined on empty
    segments.
    """
    counts = np.bincount(gids, minlength=n_groups)
    sums = np.bincount(gids, weights=values, minlength=n_groups)
    order = np.argsort(gids, kind="stable")
    sorted_values = values[order]
    starts = np.searchsorted(gids[order], np.arange(n_groups), side="left")
    mins = np.minimum.reduceat(sorted_values, starts)
    maxs = np.maximum.reduceat(sorted_values, starts)
    return counts, sums, mins, maxs, starts, sorted_values


__all__ = [
    "combine_groups",
    "factorize_column",
    "factorize_values",
    "filter_mask",
    "grouped_reduce",
    "time_mask",
]
