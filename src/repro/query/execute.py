"""Query execution on one leaf.

A leaf scans the target table's row blocks — skipping any whose min/max
timestamps fall outside the query's time range — applies filters, groups,
and produces mergeable partial aggregate states.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.columnstore.leafmap import LeafMap
from repro.query.aggregate import LeafPartial, new_states
from repro.query.query import Query
from repro.types import TIME_COLUMN


@dataclass
class LeafExecution:
    """A leaf's partial result plus scan statistics."""

    partial: LeafPartial
    rows_scanned: int = 0
    rows_matched: int = 0
    blocks_pruned: int = 0


def execute_on_leaf(leafmap: LeafMap, query: Query) -> LeafExecution:
    """Run ``query`` against one leaf's data.

    A leaf that does not hold the table contributes an empty partial —
    tables are spread over many leaves and any given leaf may have none
    of a small table's rows.
    """
    execution = LeafExecution(partial={})
    if query.table not in leafmap:
        return execution
    table = leafmap.get_table(query.table)

    # Row-block pruning statistics (the scan itself prunes identically).
    for block in table.blocks:
        if not block.overlaps(query.start_time, query.end_time):
            execution.blocks_pruned += 1

    for row in table.scan(query.start_time, query.end_time):
        execution.rows_scanned += 1
        if any(not f.matches(row) for f in query.filters):
            continue
        execution.rows_matched += 1
        group = tuple(row.get(column) for column in query.group_by)
        if query.bucket_seconds is not None:
            timestamp = row[TIME_COLUMN]
            group = (timestamp - timestamp % query.bucket_seconds,) + group
        states = execution.partial.get(group)
        if states is None:
            states = new_states(query)
            execution.partial[group] = states
        for agg, state in zip(query.aggregations, states):
            if agg.func == "count":
                state.update(None)
            else:
                value = row.get(agg.column)
                state.update(value if agg.column in row else None)
    return execution


def rows_in_time_range(leafmap: LeafMap, table: str, start: int | None, end: int | None):
    """Raw row access with pruning (used by tests and examples)."""
    if table not in leafmap:
        return iter(())
    return leafmap.get_table(table).scan(start, end)


__all__ = ["LeafExecution", "execute_on_leaf", "rows_in_time_range"]
