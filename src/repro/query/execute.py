"""Query execution on one leaf.

A leaf scans the target table's row blocks — skipping any whose min/max
timestamps fall outside the query's time range — applies filters, groups,
and produces mergeable partial aggregate states.

Two executors share that contract:

- :func:`execute_on_leaf` (the default) is **vectorized**: for each
  surviving block it decodes only the columns the query references
  (time ∪ filters ∪ group_by ∪ aggregation columns) into
  :class:`DecodedColumn` arrays — through the leaf's decoded-column
  cache when one is attached — and runs the numpy kernels of
  ``repro.query.kernels``.  No row dicts are ever materialized for
  sealed blocks; only the (at most one block's worth of) unsealed
  write-buffer rows take the row path.
- :func:`execute_on_leaf_rows` is the original row-at-a-time loop, kept
  as the differential-testing oracle: for any query the two must
  produce equal partials, scan counts, and errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.columnstore.colcache import DecodedColumnCache
from repro.columnstore.leafmap import LeafMap
from repro.columnstore.rowblock import RowBlock
from repro.compression.decoded import DecodedColumn, DecodedKind
from repro.errors import QueryError
from repro.query import kernels
from repro.query.aggregate import LeafPartial, new_states
from repro.query.query import Query
from repro.types import TIME_COLUMN, ColumnValue


@dataclass
class LeafExecution:
    """A leaf's partial result plus scan statistics."""

    partial: LeafPartial
    rows_scanned: int = 0
    rows_matched: int = 0
    blocks_pruned: int = 0


def execute_on_leaf(
    leafmap: LeafMap,
    query: Query,
    cache: DecodedColumnCache | None = None,
    vectorized: bool = True,
) -> LeafExecution:
    """Run ``query`` against one leaf's data.

    A leaf that does not hold the table contributes an empty partial —
    tables are spread over many leaves and any given leaf may have none
    of a small table's rows.

    ``cache`` overrides the table's attached decoded-column cache;
    ``vectorized=False`` routes to the row-at-a-time oracle.
    """
    if not vectorized:
        return execute_on_leaf_rows(leafmap, query)
    execution = LeafExecution(partial={})
    _fault_in_for_query(leafmap, query.table, query.start_time, query.end_time)
    if query.table not in leafmap:
        return execution
    table = leafmap.get_table(query.table)
    if cache is None:
        cache = table.cache
    needed = _needed_columns(query)
    for block in table.blocks:
        if not block.overlaps(query.start_time, query.end_time):
            execution.blocks_pruned += 1
            continue
        _execute_block(execution, query, block, needed, cache)
    # Fold the write buffer as its own partial and merge it, exactly as
    # a sealed block's partial merges.  This keeps aggregate floats
    # bit-stable across sealing: the buffer's rows accumulate from zero
    # in row order either way (``np.bincount`` adds in input order), so
    # a restart that seals the buffer does not move any rounding.
    buffered = LeafExecution(partial={})
    for row in table.iter_buffer_rows(query.start_time, query.end_time):
        _fold_row(buffered, query, row)
    execution.rows_scanned += buffered.rows_scanned
    execution.rows_matched += buffered.rows_matched
    _merge_partial(execution.partial, buffered.partial)
    return execution


def execute_on_leaf_rows(leafmap: LeafMap, query: Query) -> LeafExecution:
    """Row-at-a-time reference executor (the differential-test oracle).

    Walks the blocks exactly once, folding pruning statistics into the
    same pass as the scan.
    """
    execution = LeafExecution(partial={})
    _fault_in_for_query(leafmap, query.table, query.start_time, query.end_time)
    if query.table not in leafmap:
        return execution
    table = leafmap.get_table(query.table)
    for block in table.blocks:
        if not block.overlaps(query.start_time, query.end_time):
            execution.blocks_pruned += 1
            continue
        for row in block.to_rows():
            if _in_range(row[TIME_COLUMN], query.start_time, query.end_time):
                _fold_row(execution, query, row)
    for row in table.iter_buffer_rows(query.start_time, query.end_time):
        _fold_row(execution, query, row)
    return execution


def rows_in_time_range(
    leafmap: LeafMap, table: str, start: int | None, end: int | None
) -> Iterator[dict[str, ColumnValue]]:
    """Raw row access with pruning (used by tests and examples).

    Always a generator: a leaf without the table yields nothing, rather
    than handing back a bare ``iter(())`` whose concrete type differs
    from every other call's.
    """
    _fault_in_for_query(leafmap, table, start, end)
    if table not in leafmap:
        return
    yield from leafmap.get_table(table).scan(start, end)


def _fault_in_for_query(
    leafmap: LeafMap, table: str, start: int | None, end: int | None
) -> None:
    """Serve-while-restoring hook: pull in the blocks this query touches.

    While a lazy restore is pending, ``table.blocks`` holds only the
    already-faulted prefix; the query's time range decides which pending
    blocks must be decoded from shared memory before the scan below can
    be complete.  A no-op on a fully-resident leaf — the common case is
    one attribute load and a None check.
    """
    restorer = leafmap.restorer
    if restorer is not None:
        restorer.fault_in_query(table, start, end)


# ----------------------------------------------------------------------
# Vectorized block execution
# ----------------------------------------------------------------------


def _needed_columns(query: Query) -> list[str]:
    """The columns the query actually references — the projection set."""
    needed = {TIME_COLUMN}
    needed.update(f.column for f in query.filters)
    needed.update(query.group_by)
    needed.update(
        agg.column for agg in query.aggregations if agg.func != "count"
    )
    return sorted(needed)


def _execute_block(
    execution: LeafExecution,
    query: Query,
    block: RowBlock,
    needed: list[str],
    cache: DecodedColumnCache | None,
) -> None:
    decoded: dict[str, DecodedColumn | None] = {}

    def col(name: str) -> DecodedColumn | None:
        # Lazy per-column decode: a block whose time mask comes up empty
        # never pays for its filter or aggregation columns.
        if name not in decoded:
            if name not in block.schema:
                decoded[name] = None
            elif cache is not None:
                decoded[name] = cache.get_or_decode(block, name)
            else:
                decoded[name] = block.decoded_column(name)
        return decoded[name]

    times = col(TIME_COLUMN).values
    mask = kernels.time_mask(times, query.start_time, query.end_time)
    scanned = int(np.count_nonzero(mask))
    execution.rows_scanned += scanned
    if not scanned:
        return
    for filt in query.filters:
        # The row path short-circuits: once no row survives, the next
        # filter is never evaluated (and so cannot raise).  Mirror that
        # at block granularity — filter errors here are type-level, so
        # "evaluated for any surviving row" and "evaluated at all"
        # raise identically.
        mask &= kernels.filter_mask(filt, col(filt.column), block.row_count)
        if not mask.any():
            return
    execution.rows_matched += int(np.count_nonzero(mask))
    sel = np.flatnonzero(mask)
    if any(
        (c := col(name)) is not None and c.kind is DecodedKind.VECTOR
        for name in query.group_by
    ):
        # Grouping by a STRING_VECTOR column makes an unhashable key;
        # take the row path for this block so it raises the identical
        # TypeError the row executor would.
        rows = block.to_rows()
        for i in sel:
            _fold_matched_row(execution, query, rows[int(i)])
        return
    factors = []
    if query.bucket_seconds is not None:
        bucketed = times[sel] - times[sel] % query.bucket_seconds
        factors.append(kernels.factorize_values(bucketed))
    for name in query.group_by:
        factors.append(kernels.factorize_column(col(name), sel))
    gids, keys = kernels.combine_groups(factors, sel.size)
    n_groups = len(keys)
    block_states = [new_states(query) for _ in keys]
    for agg_index, agg in enumerate(query.aggregations):
        if agg.func == "count":
            counts = np.bincount(gids, minlength=n_groups)
            for g in range(n_groups):
                block_states[g][agg_index].count = int(counts[g])
            continue
        agg_col = col(agg.column)
        if agg_col is None:
            # Missing column: the row path updates with None, a no-op —
            # the group still exists, its state stays at count 0.
            continue
        if agg_col.kind is not DecodedKind.NUMERIC:
            typename = "str" if agg_col.kind is DecodedKind.DICT else "list"
            raise QueryError(
                f"aggregation '{agg.func}' requires numeric values, got "
                f"{typename}"
            )
        values = agg_col.values[sel].astype(np.float64)
        counts, sums, mins, maxs, starts, sorted_values = kernels.grouped_reduce(
            gids, n_groups, values
        )
        keep_samples = agg.func.startswith("p")
        for g in range(n_groups):
            state = block_states[g][agg_index]
            state.count = int(counts[g])
            state.total = float(sums[g])
            state.minimum = float(mins[g])
            state.maximum = float(maxs[g])
            if keep_samples:
                stop = starts[g] + counts[g]
                state.samples = [
                    float(v) for v in sorted_values[starts[g] : stop]
                ]
    _merge_partial(execution.partial, dict(zip(keys, block_states)))


def _merge_partial(target: LeafPartial, incoming: LeafPartial) -> None:
    for key, states in incoming.items():
        existing = target.get(key)
        if existing is None:
            target[key] = states
        else:
            for mine, theirs in zip(existing, states):
                mine.merge(theirs)


# ----------------------------------------------------------------------
# Row-path fold (oracle, write buffer, and vector-group-by fallback)
# ----------------------------------------------------------------------


def _fold_row(
    execution: LeafExecution, query: Query, row: dict[str, ColumnValue]
) -> None:
    execution.rows_scanned += 1
    if any(not f.matches(row) for f in query.filters):
        return
    execution.rows_matched += 1
    _fold_matched_row(execution, query, row)


def _fold_matched_row(
    execution: LeafExecution, query: Query, row: dict[str, ColumnValue]
) -> None:
    group = tuple(row.get(column) for column in query.group_by)
    if query.bucket_seconds is not None:
        timestamp = row[TIME_COLUMN]
        group = (timestamp - timestamp % query.bucket_seconds,) + group
    states = execution.partial.get(group)
    if states is None:
        states = new_states(query)
        execution.partial[group] = states
    for agg, state in zip(query.aggregations, states):
        if agg.func == "count":
            state.update(None)
        else:
            state.update(row.get(agg.column) if agg.column in row else None)


def _in_range(
    timestamp: ColumnValue, start: int | None, end: int | None
) -> bool:
    if start is not None and timestamp < start:
        return False
    if end is not None and timestamp >= end:
        return False
    return True


__all__ = [
    "LeafExecution",
    "execute_on_leaf",
    "execute_on_leaf_rows",
    "rows_in_time_range",
]
