"""The tailer: pulls rows out of Scribe and routes batches to leaves.

Routing (paper, Section 2): "Every N rows or t seconds, the tailer
chooses a new Scuba leaf server and sends it a batch of rows.  How does
it choose a server?  It picks two servers randomly and asks them both for
their current state and how much free memory they have.  If both are
alive, it sends the data to the server with more free memory.  If only
one is alive, that server gets the data.  If neither server is alive, the
tailer will try two more servers until it finds one that is alive or
(after enough tries) sends the data to a restarting server."
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import RoutingError
from repro.ingest.scribe import ScribeLog
from repro.server.leaf import LeafServer
from repro.util.clock import Clock, SystemClock

#: "after enough tries": pairs of random servers probed before settling
#: for a restarting (disk-recovering) leaf.
DEFAULT_MAX_PAIR_TRIES = 5


@dataclass
class TailerStats:
    """Counters describing routing behaviour (experiment E10)."""

    batches_sent: int = 0
    rows_sent: int = 0
    sent_to_recovering: int = 0
    pair_probes: int = 0
    batches_per_leaf: dict[str, int] = field(default_factory=dict)
    rows_per_leaf: dict[str, int] = field(default_factory=dict)


class Tailer:
    """One tailer process feeding one table from one Scribe category."""

    def __init__(
        self,
        scribe: ScribeLog,
        category: str,
        table: str,
        leaves: list[LeafServer],
        batch_rows: int = 1000,
        batch_seconds: float = 10.0,
        max_pair_tries: int = DEFAULT_MAX_PAIR_TRIES,
        rng: random.Random | None = None,
        clock: Clock | None = None,
        mirror: Callable[[str, str, list], None] | None = None,
    ) -> None:
        if batch_rows < 1:
            raise ValueError("batch_rows must be positive")
        if not leaves:
            raise ValueError("a tailer needs at least one leaf to route to")
        self.scribe = scribe
        self.category = category
        self.table = table
        self.leaves = leaves
        self.batch_rows = batch_rows
        self.batch_seconds = batch_seconds
        self.max_pair_tries = max_pair_tries
        self._rng = rng or random.Random()
        self._clock = clock or SystemClock()
        self._cursor = 0
        self._last_flush = self._clock.now()
        self.stats = TailerStats()
        #: Called as ``mirror(leaf_id, table, rows)`` after each
        #: successful primary delivery; table-level replication hangs
        #: off this hook so the replica sees exactly the acknowledged
        #: batches, in order.
        self._mirror = mirror

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def choose_leaf(self) -> LeafServer:
        """Two-random-choices routing with alive/recovering fallback."""
        recovering_candidate: LeafServer | None = None
        for _ in range(self.max_pair_tries):
            pair = self._rng.sample(self.leaves, min(2, len(self.leaves)))
            self.stats.pair_probes += 1
            alive = [leaf for leaf in pair if leaf.is_alive]
            if len(alive) == 2:
                return max(alive, key=lambda leaf: leaf.free_memory)
            if len(alive) == 1:
                return alive[0]
            for leaf in pair:
                if leaf.accepts_adds and recovering_candidate is None:
                    recovering_candidate = leaf
        if recovering_candidate is not None:
            self.stats.sent_to_recovering += 1
            return recovering_candidate
        raise RoutingError(
            f"tailer for table '{self.table}' found no leaf accepting data "
            f"after {self.max_pair_tries} pair probes"
        )

    # ------------------------------------------------------------------
    # Pumping
    # ------------------------------------------------------------------

    @property
    def backlog(self) -> int:
        return self.scribe.backlog(self.category, self._cursor)

    def _flush_due(self) -> bool:
        if self.backlog >= self.batch_rows:
            return True
        return (
            self.backlog > 0
            and self._clock.now() - self._last_flush >= self.batch_seconds
        )

    def pump_once(self) -> int:
        """Send at most one batch; returns rows delivered."""
        if not self._flush_due():
            return 0
        rows, new_cursor = self.scribe.read(
            self.category, self._cursor, max_rows=self.batch_rows
        )
        if not rows:
            return 0
        leaf = self.choose_leaf()
        delivered = leaf.add_rows(self.table, rows)
        if self._mirror is not None:
            self._mirror(leaf.leaf_id, self.table, rows)
        # Advance the cursor only after a successful delivery: a leaf
        # that died mid-send leaves the batch unacknowledged and the rows
        # are re-read (at-least-once, like the real pipeline).
        self._cursor = new_cursor
        self._last_flush = self._clock.now()
        self.stats.batches_sent += 1
        self.stats.rows_sent += delivered
        self.stats.batches_per_leaf[leaf.leaf_id] = (
            self.stats.batches_per_leaf.get(leaf.leaf_id, 0) + 1
        )
        self.stats.rows_per_leaf[leaf.leaf_id] = (
            self.stats.rows_per_leaf.get(leaf.leaf_id, 0) + delivered
        )
        return delivered

    def drain(self, max_batches: int | None = None) -> int:
        """Pump until the backlog is empty (or ``max_batches`` sent)."""
        total = 0
        batches = 0
        while self.backlog > 0:
            if max_batches is not None and batches >= max_batches:
                break
            sent = self.pump_once()
            if sent == 0:
                # Below both thresholds: force the time-based flush by
                # treating drain as a flush boundary.
                rows, new_cursor = self.scribe.read(
                    self.category, self._cursor, max_rows=self.batch_rows
                )
                if not rows:
                    break
                leaf = self.choose_leaf()
                sent = leaf.add_rows(self.table, rows)
                if self._mirror is not None:
                    self._mirror(leaf.leaf_id, self.table, rows)
                self._cursor = new_cursor
                self.stats.batches_sent += 1
                self.stats.rows_sent += sent
                self.stats.batches_per_leaf[leaf.leaf_id] = (
                    self.stats.batches_per_leaf.get(leaf.leaf_id, 0) + 1
                )
                self.stats.rows_per_leaf[leaf.leaf_id] = (
                    self.stats.rows_per_leaf.get(leaf.leaf_id, 0) + sent
                )
            total += sent
            batches += 1
        return total
