"""Ingestion path: Scribe categories and tailer processes (paper, Fig. 1).

"Data flows from log calls in Facebook products and services into Scribe.
Scuba 'tailer' processes pull the data for each table out of Scribe and
send it into Scuba."
"""

from repro.ingest.scribe import ScribeLog
from repro.ingest.tailer import Tailer, TailerStats

__all__ = ["ScribeLog", "Tailer", "TailerStats"]
