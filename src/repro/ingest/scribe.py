"""A Scribe stand-in: a per-category append log with cursors.

The real Scribe is a distributed messaging system; for the restart
paper's purposes only its delivery semantics matter — producers append
rows under a category (one per table), consumers (tailers) read forward
from a cursor and can re-read after a failure (at-least-once).
"""

from __future__ import annotations


from repro.types import ColumnValue


class ScribeLog:
    """An in-memory, multi-category, append-only log."""

    def __init__(self, retention_per_category: int = 1_000_000) -> None:
        if retention_per_category < 1:
            raise ValueError("retention must be positive")
        self._retention = retention_per_category
        self._categories: dict[str, list[dict[str, ColumnValue]]] = {}
        self._trimmed: dict[str, int] = {}  # entries dropped from the front

    @property
    def categories(self) -> list[str]:
        return list(self._categories)

    def append(self, category: str, rows) -> int:
        """Append rows under ``category``; returns the new end offset."""
        log = self._categories.setdefault(category, [])
        self._trimmed.setdefault(category, 0)
        for row in rows:
            log.append(dict(row))
        if len(log) > self._retention:
            drop = len(log) - self._retention
            del log[:drop]
            self._trimmed[category] += drop
        return self._trimmed[category] + len(log)

    def end_offset(self, category: str) -> int:
        return self._trimmed.get(category, 0) + len(self._categories.get(category, []))

    def read(
        self, category: str, cursor: int, max_rows: int | None = None
    ) -> tuple[list[dict[str, ColumnValue]], int]:
        """Read forward from ``cursor``; returns (rows, new_cursor).

        A cursor older than retention silently skips to the oldest
        retained entry — data loss by retention, as in any log system.
        """
        log = self._categories.get(category, [])
        trimmed = self._trimmed.get(category, 0)
        start = max(0, cursor - trimmed)
        end = len(log) if max_rows is None else min(len(log), start + max_rows)
        rows = [dict(row) for row in log[start:end]]
        return rows, trimmed + end

    def backlog(self, category: str, cursor: int) -> int:
        """How many rows a consumer at ``cursor`` has not yet read."""
        return max(0, self.end_offset(category) - cursor)
