"""Integer column encoding: dictionary, delta, zigzag, bit packing.

The payload is self-describing given the flag word and the item count:

- if ``DICT`` is set, the payload starts with a varint dictionary size,
  the distinct values as i64s (first-appearance order), a ``u8`` id
  width, and the bit-packed ids,
- otherwise, if ``DELTA`` is set, the payload starts with the first
  value (i64); the packed stream then holds the remaining ``n - 1``
  deltas,
- a ``u8`` bit width precedes each packed stream,
- ``ZIGZAG`` (set together with ``BITPACK`` on the non-dictionary
  paths) folds signed values into unsigned ones before packing.

Scuba's ``time`` column — present in every row and nearly sorted — is
the motivating case for delta coding; low-cardinality measures (HTTP
status codes, severities-as-ints) are the dictionary case.  The encoder
computes all applicable candidates and keeps the smallest.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.compression.base import CompressionFlags
from repro.errors import CorruptionError
from repro.util.bits import pack_uints, required_bit_width, unpack_uints

_I64 = struct.Struct("<q")


def _zigzag_encode_array(values: np.ndarray) -> np.ndarray:
    signed = values.astype(np.int64, copy=False)
    return (
        (signed.astype(np.uint64) << np.uint64(1))
        ^ (signed >> np.int64(63)).astype(np.uint64)
    )


def _zigzag_decode_array(values: np.ndarray) -> np.ndarray:
    unsigned = values.astype(np.uint64, copy=False)
    return ((unsigned >> np.uint64(1)) ^ (~(unsigned & np.uint64(1)) + np.uint64(1))).astype(
        np.int64
    )


#: An int column is dictionary-encodable when its cardinality is at most
#: this and clearly below the row count.
_INT_DICT_MAX_CARDINALITY = 4096


def _encode_int_dictionary(values: np.ndarray) -> bytes | None:
    """Dictionary candidate, or None when a dictionary cannot help."""
    n = values.size
    distinct, ids = np.unique(values, return_inverse=True)
    n_dict = distinct.size
    if n_dict > _INT_DICT_MAX_CARDINALITY or n_dict * 4 >= n:
        return None
    width = required_bit_width(max(0, n_dict - 1))
    from repro.util.binary import encode_varint

    return (
        encode_varint(n_dict)
        + distinct.astype("<i8").tobytes()
        + bytes([width])
        + pack_uints(ids.astype(np.uint64), width)
    )


def encode_int64_payload(values: np.ndarray) -> tuple[CompressionFlags, bytes]:
    """Encode an int64 array, choosing among dictionary, delta, and
    plain packing — whichever candidate is smallest.

    Returns ``(flags, payload)``.  Every eligible column gets at least
    two methods (the paper's rule): dictionary ids are bit-packed, and
    the non-dictionary paths combine zigzag+bitpack (plus delta when
    narrower).
    """
    values = np.ascontiguousarray(values, dtype=np.int64)
    n = values.size
    if n == 0:
        return CompressionFlags.ZIGZAG | CompressionFlags.BITPACK, b""
    plain = _zigzag_encode_array(values)
    plain_width = required_bit_width(int(plain.max()))
    if n > 1:
        deltas = np.diff(values)
        folded = _zigzag_encode_array(deltas)
        delta_width = required_bit_width(int(folded.max()))
    else:
        folded = np.empty(0, dtype=np.uint64)
        delta_width = 64
    use_delta = n > 1 and delta_width < plain_width
    if use_delta:
        flags = (
            CompressionFlags.DELTA | CompressionFlags.ZIGZAG | CompressionFlags.BITPACK
        )
        payload = (
            _I64.pack(int(values[0]))
            + bytes([delta_width])
            + pack_uints(folded, delta_width)
        )
    else:
        flags = CompressionFlags.ZIGZAG | CompressionFlags.BITPACK
        payload = bytes([plain_width]) + pack_uints(plain, plain_width)
    dict_payload = _encode_int_dictionary(values)
    if dict_payload is not None and len(dict_payload) < len(payload):
        return CompressionFlags.DICT | CompressionFlags.BITPACK, dict_payload
    return flags, payload


def decode_int64_payload(
    flags: CompressionFlags, payload: bytes | memoryview, n_items: int
) -> np.ndarray:
    """Invert :func:`encode_int64_payload` for ``n_items`` values."""
    if n_items == 0:
        return np.empty(0, dtype=np.int64)
    payload = memoryview(payload)
    if CompressionFlags.DICT in flags:
        return _decode_int_dictionary(payload, n_items)
    if CompressionFlags.BITPACK not in flags or CompressionFlags.ZIGZAG not in flags:
        raise CorruptionError(f"unsupported int64 flag combination: {flags!r}")
    if CompressionFlags.DELTA in flags:
        if len(payload) < 9:
            raise CorruptionError("delta int64 payload shorter than its header")
        first = _I64.unpack(payload[:8])[0]
        width = payload[8]
        folded = unpack_uints(payload[9:], width, n_items - 1)
        deltas = _zigzag_decode_array(folded)
        out = np.empty(n_items, dtype=np.int64)
        out[0] = first
        if n_items > 1:
            np.cumsum(deltas, out=out[1:])
            out[1:] += first
        return out
    if len(payload) < 1:
        raise CorruptionError("int64 payload missing its bit-width byte")
    width = payload[0]
    packed = unpack_uints(payload[1:], width, n_items)
    return _zigzag_decode_array(packed)


def _decode_int_dictionary(payload: memoryview, n_items: int) -> np.ndarray:
    from repro.util.binary import decode_varint

    n_dict, offset = decode_varint(payload)
    end_values = offset + 8 * n_dict
    if end_values + 1 > len(payload):
        raise CorruptionError("int dictionary payload truncated")
    distinct = np.frombuffer(payload[offset:end_values], dtype="<i8")
    width = payload[end_values]
    ids = unpack_uints(payload[end_values + 1 :], width, n_items)
    if n_dict == 0 or int(ids.max(initial=0)) >= n_dict:
        raise CorruptionError(
            f"int dictionary id out of range (dictionary has {n_dict} entries)"
        )
    return distinct[ids.astype(np.int64)].astype(np.int64)
