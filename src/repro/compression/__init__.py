"""Column compression.

Scuba compresses every column with *at least two* of: dictionary encoding,
bit packing, delta encoding, and lz4 (paper, Section 2.1), shrinking row
block columns by roughly 30x on production data.  This package implements
each of those methods from scratch and a :mod:`pipeline
<repro.compression.pipeline>` that picks a combination per column type,
recording the choice as a flag word so the decoder is self-describing.
"""

from repro.compression.base import CompressionFlags, EncodedColumn
from repro.compression.decoded import DecodedColumn, DecodedKind
from repro.compression.dictionary import dictionary_decode, dictionary_encode
from repro.compression.intcodec import decode_int64_payload, encode_int64_payload
from repro.compression.lzs import lz_compress, lz_decompress
from repro.compression.pipeline import (
    decode_column,
    decode_column_arrays,
    encode_column,
    encoded_size,
)

__all__ = [
    "CompressionFlags",
    "DecodedColumn",
    "DecodedKind",
    "EncodedColumn",
    "decode_column",
    "decode_column_arrays",
    "decode_int64_payload",
    "dictionary_decode",
    "dictionary_encode",
    "encode_column",
    "encode_int64_payload",
    "encoded_size",
    "lz_compress",
    "lz_decompress",
]
