"""An LZ77-style byte compressor, implemented from scratch.

This is the stand-in for lz4 in the paper's codec list.  It uses the same
structural idea as the lz4 block format — a greedy parse with a hash table
over 4-byte prefixes, emitting alternating literal runs and back-references
— with varint-coded lengths instead of lz4's nibble tokens, which keeps the
pure-Python encoder and decoder short and unambiguous.

Stream format (repeated until input is exhausted)::

    varint literal_len
    literal_len raw bytes
    varint match_len        # 0 only in the final token (no match follows)
    varint match_distance   # >= 1, distance back from current position

The compressor never expands pathologically: callers (the pipeline) compare
output to input size and fall back to RAW when compression does not pay.
"""

from __future__ import annotations

from repro.errors import CorruptionError
from repro.util.binary import decode_varint, encode_varint

_MIN_MATCH = 4
_MAX_CHAIN = 16  # how many hash-bucket candidates the encoder probes
_WINDOW = 1 << 16  # maximum back-reference distance


def _hash4(data: bytes, pos: int) -> int:
    """Hash of the 4 bytes at ``pos`` (Fibonacci hashing, as in lz4)."""
    word = data[pos] | data[pos + 1] << 8 | data[pos + 2] << 16 | data[pos + 3] << 24
    return (word * 2654435761) >> 18 & 0x3FFF


def lz_compress(data: bytes | memoryview) -> bytes:
    """Compress ``data``; the empty input compresses to the empty output."""
    data = bytes(data)
    n = len(data)
    if n == 0:
        return b""
    out = bytearray()
    table: dict[int, list[int]] = {}
    pos = 0
    literal_start = 0
    while pos + _MIN_MATCH <= n:
        key = _hash4(data, pos)
        candidates = table.get(key)
        best_len = 0
        best_dist = 0
        if candidates:
            for cand in reversed(candidates[-_MAX_CHAIN:]):
                dist = pos - cand
                if dist > _WINDOW:
                    break
                # Verify and extend the match.
                match_len = 0
                limit = n - pos
                while (
                    match_len < limit
                    and data[cand + match_len] == data[pos + match_len]
                ):
                    match_len += 1
                if match_len > best_len:
                    best_len = match_len
                    best_dist = dist
        table.setdefault(key, []).append(pos)
        if best_len >= _MIN_MATCH:
            out += encode_varint(pos - literal_start)
            out += data[literal_start:pos]
            out += encode_varint(best_len)
            out += encode_varint(best_dist)
            # Index a sparse sample of positions inside the match so later
            # matches can still find this region without O(n) inserts.
            end = pos + best_len
            step = max(1, best_len // 8)
            probe = pos + 1
            while probe + _MIN_MATCH <= min(end, n - _MIN_MATCH + 1):
                table.setdefault(_hash4(data, probe), []).append(probe)
                probe += step
            pos = end
            literal_start = pos
        else:
            pos += 1
    # Final token: trailing literals with match_len 0.
    out += encode_varint(n - literal_start)
    out += data[literal_start:]
    out += encode_varint(0)
    out += encode_varint(0)
    return bytes(out)


def lz_decompress(data: bytes | memoryview) -> bytes:
    """Invert :func:`lz_compress`.

    Raises :class:`CorruptionError` on truncated streams or references
    reaching before the start of the output.
    """
    data = bytes(data)
    if not data:
        return b""
    out = bytearray()
    pos = 0
    n = len(data)
    while pos < n:
        literal_len, pos = decode_varint(data, pos)
        if pos + literal_len > n:
            raise CorruptionError("LZ literal run overruns the compressed stream")
        out += data[pos : pos + literal_len]
        pos += literal_len
        match_len, pos = decode_varint(data, pos)
        match_dist, pos = decode_varint(data, pos)
        if match_len == 0:
            if match_dist != 0:
                raise CorruptionError("LZ terminator token has nonzero distance")
            break
        if match_dist == 0 or match_dist > len(out):
            raise CorruptionError(
                f"LZ back-reference distance {match_dist} outside the "
                f"{len(out)} bytes produced so far"
            )
        start = len(out) - match_dist
        if match_dist >= match_len:
            # Non-overlapping: the whole match already exists, one slice.
            out += out[start : start + match_len]
        else:
            # Overlapping copies are legal (distance < length repeats the
            # last `distance` bytes): everything past `start` is periodic
            # with period `match_dist`, so chunks can be taken from the
            # fixed `start` as long as each begins at a period boundary —
            # which they do, because the available window (a multiple of
            # the period) doubles with every extension.
            remaining = match_len
            while remaining > 0:
                take = min(len(out) - start, remaining)
                out += out[start : start + take]
                remaining -= take
    else:
        raise CorruptionError("LZ stream ended without a terminator token")
    return bytes(out)
