"""Dictionary encoding for string columns.

Scuba's dominant string compression: the distinct values go into a
dictionary section and the data section holds bit-packed ids.  Monitoring
data is extremely repetitive (host names, endpoints, severity labels), so
cardinality is usually tiny relative to the row count.

The dictionary section is the concatenation of varint-length-prefixed
UTF-8 entries, in first-appearance order so encoding is deterministic.
The id stream is a one-byte bit width followed by the packed ids.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CorruptionError
from repro.util.binary import BufferReader, BufferWriter
from repro.util.bits import pack_uints, required_bit_width, unpack_uints


def dictionary_encode(values: list[str]) -> tuple[bytes, bytes, int]:
    """Encode ``values`` as ``(dictionary_bytes, id_bytes, n_dict_items)``."""
    ids = np.empty(len(values), dtype=np.uint64)
    index: dict[str, int] = {}
    writer = BufferWriter()
    for i, value in enumerate(values):
        slot = index.get(value)
        if slot is None:
            slot = len(index)
            index[value] = slot
            writer.write_str(value)
        ids[i] = slot
    n_dict = len(index)
    if len(values) == 0:
        return b"", b"", 0
    width = required_bit_width(max(0, n_dict - 1))
    id_bytes = bytes([width]) + pack_uints(ids, width)
    return writer.getvalue(), id_bytes, n_dict


def decode_dictionary_entries(dictionary: bytes | memoryview, n_dict: int) -> list[str]:
    """Parse the dictionary section back into its entries."""
    reader = BufferReader(dictionary)
    entries = [reader.read_str() for _ in range(n_dict)]
    if reader.remaining:
        raise CorruptionError(
            f"{reader.remaining} trailing bytes after {n_dict} dictionary entries"
        )
    return entries


def dictionary_decode(
    dictionary: bytes | memoryview,
    id_bytes: bytes | memoryview,
    n_dict: int,
    n_items: int,
) -> list[str]:
    """Invert :func:`dictionary_encode`."""
    if n_items == 0:
        return []
    entries = decode_dictionary_entries(dictionary, n_dict)
    id_view = memoryview(id_bytes)
    if len(id_view) < 1:
        raise CorruptionError("dictionary id stream missing its width byte")
    width = id_view[0]
    ids = unpack_uints(id_view[1:], width, n_items)
    if n_dict == 0 or int(ids.max(initial=0)) >= n_dict:
        raise CorruptionError(
            f"dictionary id out of range (dictionary has {n_dict} entries)"
        )
    return [entries[i] for i in ids]
