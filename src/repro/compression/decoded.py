"""Decoded column arrays: the vectorized form of one row block column.

The row path materializes every row as a Python dict; the vectorized
query engine instead decodes each referenced column *once* into an
array-shaped :class:`DecodedColumn` and runs numpy kernels over it
(``repro.query.kernels``).  Three shapes cover the four column types:

- ``NUMERIC`` — INT64/FLOAT64 values as one contiguous numpy array.
- ``DICT`` — STRING values as ``codes`` (one int64 id per row) plus the
  ``entries`` lookup table, in dictionary order.  Dictionary-encoded
  columns keep their stored ids; raw/LZ string columns are factorized at
  decode time so every string column presents the same id-space shape.
- ``VECTOR`` — STRING_VECTOR values as flattened ``codes`` plus an
  ``offsets`` array of ``n_rows + 1`` row boundaries (CSR layout) and
  the shared ``entries`` table.

Predicates on strings then compare against the (tiny) ``entries`` table
once and broadcast the verdict through ``codes`` — the "decode the
dictionary once, not per row" trick — and group-by columns arrive
pre-factorized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np


class DecodedKind(Enum):
    """Array shape of a decoded column."""

    NUMERIC = "numeric"
    DICT = "dict"
    VECTOR = "vector"


@dataclass(frozen=True)
class DecodedColumn:
    """One column of one row block, decoded to arrays.

    Instances are immutable and safe to share between queries — the
    decoded-column cache hands the same object to every reader.  The
    arrays are always fresh heap copies, never views into the encoded
    buffer, so a cached ``DecodedColumn`` outlives its row block.
    """

    kind: DecodedKind
    #: NUMERIC: the values (int64 or float64), length ``n_rows``.
    values: np.ndarray | None = None
    #: DICT: one entry id per row.  VECTOR: flattened entry ids.
    codes: np.ndarray | None = None
    #: VECTOR only: ``n_rows + 1`` boundaries into ``codes`` (CSR).
    offsets: np.ndarray | None = None
    #: DICT/VECTOR: the distinct strings, indexed by code.
    entries: tuple[str, ...] = field(default=())

    @classmethod
    def numeric(cls, values: np.ndarray) -> "DecodedColumn":
        return cls(DecodedKind.NUMERIC, values=values)

    @classmethod
    def dictionary(
        cls, codes: np.ndarray, entries: list[str] | tuple[str, ...]
    ) -> "DecodedColumn":
        return cls(DecodedKind.DICT, codes=codes, entries=tuple(entries))

    @classmethod
    def vector(
        cls,
        codes: np.ndarray,
        offsets: np.ndarray,
        entries: list[str] | tuple[str, ...],
    ) -> "DecodedColumn":
        return cls(
            DecodedKind.VECTOR, codes=codes, offsets=offsets, entries=tuple(entries)
        )

    def __len__(self) -> int:
        if self.kind is DecodedKind.NUMERIC:
            return int(self.values.size)
        if self.kind is DecodedKind.DICT:
            return int(self.codes.size)
        return int(self.offsets.size) - 1

    @property
    def nbytes(self) -> int:
        """Heap footprint estimate — what the decoded-column cache charges."""
        total = 0
        if self.values is not None:
            total += self.values.nbytes
        if self.codes is not None:
            total += self.codes.nbytes
        if self.offsets is not None:
            total += self.offsets.nbytes
        # Strings: payload plus ~50 bytes of CPython object overhead each.
        total += sum(len(entry) + 50 for entry in self.entries)
        return total

    def row_value(self, i: int):
        """The Python value of row ``i`` (row-path fallbacks and tests)."""
        if self.kind is DecodedKind.NUMERIC:
            return self.values[i].item()
        if self.kind is DecodedKind.DICT:
            return self.entries[int(self.codes[i])]
        start, end = int(self.offsets[i]), int(self.offsets[i + 1])
        return [self.entries[int(code)] for code in self.codes[start:end]]


__all__ = ["DecodedColumn", "DecodedKind"]
