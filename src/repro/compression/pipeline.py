"""Per-type compression pipelines.

``encode_column`` turns a homogeneous list of values into an
:class:`~repro.compression.base.EncodedColumn`; ``decode_column`` inverts
it given only the information a row block column header carries (type,
flags, item counts).  Method selection follows Scuba's combination rules
(paper, Section 2.1 — "at least two methods applied to each column"):

- INT64    → zigzag + bitpack, with delta added when it narrows the width
- FLOAT64  → byte shuffle + LZ, raw fallback when incompressible
- STRING   → dictionary + bitpacked ids (LZ'd dictionary when it pays);
             raw + LZ fallback for near-unique columns
- VECTOR   → bitpacked per-row lengths + flattened dictionary encoding
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressionFlags, EncodedColumn
from repro.compression.decoded import DecodedColumn
from repro.compression.dictionary import (
    decode_dictionary_entries,
    dictionary_encode,
)
from repro.compression.floatcodec import (
    decode_float64_payload,
    encode_float64_payload,
)
from repro.compression.intcodec import decode_int64_payload, encode_int64_payload
from repro.compression.lzs import lz_compress, lz_decompress
from repro.errors import CorruptionError
from repro.types import ColumnType, ColumnValue
from repro.util.binary import BufferReader, BufferWriter
from repro.util.bits import pack_uints, required_bit_width, unpack_uints

#: A string column whose distinct/total ratio exceeds this is stored raw
#: (near-unique request ids gain nothing from a dictionary).
_DICT_CARDINALITY_CUTOFF = 0.9


def _maybe_lz_dictionary(dictionary: bytes) -> tuple[CompressionFlags, bytes]:
    """LZ the dictionary section when that actually shrinks it."""
    if len(dictionary) < 64:
        return CompressionFlags.RAW, dictionary
    compressed = lz_compress(dictionary)
    if len(compressed) < len(dictionary):
        return CompressionFlags.DICT_LZ, compressed
    return CompressionFlags.RAW, dictionary


def _encode_strings(values: list[str]) -> EncodedColumn:
    n = len(values)
    distinct = len(set(values)) if n else 0
    if n and distinct / n > _DICT_CARDINALITY_CUTOFF:
        writer = BufferWriter()
        for value in values:
            writer.write_str(value)
        raw = writer.getvalue()
        compressed = lz_compress(raw)
        if len(compressed) < len(raw):
            return EncodedColumn(CompressionFlags.LZ, n, 0, b"", compressed)
        return EncodedColumn(CompressionFlags.RAW, n, 0, b"", raw)
    dictionary, ids, n_dict = dictionary_encode(values)
    dict_flag, dictionary = _maybe_lz_dictionary(dictionary)
    flags = CompressionFlags.DICT | CompressionFlags.BITPACK | dict_flag
    return EncodedColumn(flags, n, n_dict, dictionary, ids)


def _parse_dict_strings(encoded: EncodedColumn) -> tuple[list[str], np.ndarray]:
    """Dictionary-encoded string sections as ``(entries, ids)``."""
    dictionary = encoded.dictionary
    if CompressionFlags.DICT_LZ in encoded.flags:
        dictionary = lz_decompress(dictionary)
    entries = decode_dictionary_entries(dictionary, encoded.n_dict_items)
    if encoded.n_items == 0:
        return entries, np.empty(0, dtype=np.uint64)
    data = memoryview(encoded.data)
    if len(data) < 1:
        raise CorruptionError("string id stream missing its width byte")
    ids = unpack_uints(data[1:], data[0], encoded.n_items)
    if encoded.n_dict_items == 0 or int(ids.max(initial=0)) >= encoded.n_dict_items:
        raise CorruptionError("string dictionary id out of range")
    return entries, ids


def _decode_raw_strings(encoded: EncodedColumn) -> list[str]:
    raw = encoded.data
    flags = encoded.flags
    if CompressionFlags.LZ in flags:
        raw = lz_decompress(raw)
    elif flags != CompressionFlags.RAW:
        raise CorruptionError(f"unsupported string flag combination: {flags!r}")
    reader = BufferReader(raw)
    values = [reader.read_str() for _ in range(encoded.n_items)]
    if reader.remaining:
        raise CorruptionError("trailing bytes after raw string column payload")
    return values


def _decode_strings(encoded: EncodedColumn) -> list[str]:
    if CompressionFlags.DICT in encoded.flags:
        entries, ids = _parse_dict_strings(encoded)
        return [entries[i] for i in ids]
    return _decode_raw_strings(encoded)


def _encode_string_vectors(values: list[list[str]]) -> EncodedColumn:
    lengths = np.fromiter((len(v) for v in values), dtype=np.uint64, count=len(values))
    flat: list[str] = [item for vector in values for item in vector]
    dictionary, ids, n_dict = dictionary_encode(flat)
    dict_flag, dictionary = _maybe_lz_dictionary(dictionary)
    writer = BufferWriter()
    if len(values):
        length_width = required_bit_width(int(lengths.max(initial=0)))
        writer.write_u8(length_width)
        writer.write_varint(len(flat))
        packed = pack_uints(lengths, length_width)
        writer.write_varint(len(packed))
        writer.write_bytes(packed)
        writer.write_bytes(ids)
    flags = CompressionFlags.DICT | CompressionFlags.BITPACK | dict_flag
    return EncodedColumn(flags, len(values), n_dict, dictionary, writer.getvalue())


def _parse_string_vectors(
    encoded: EncodedColumn,
) -> tuple[list[str], np.ndarray, np.ndarray]:
    """String-vector sections as ``(entries, per-row lengths, flat ids)``."""
    dictionary = encoded.dictionary
    if CompressionFlags.DICT_LZ in encoded.flags:
        dictionary = lz_decompress(dictionary)
    entries = decode_dictionary_entries(dictionary, encoded.n_dict_items)
    if encoded.n_items == 0:
        empty = np.empty(0, dtype=np.uint64)
        return entries, empty, empty
    reader = BufferReader(encoded.data)
    length_width = reader.read_u8()
    n_flat = reader.read_varint()
    packed_lengths = reader.read_len_prefixed()
    lengths = unpack_uints(packed_lengths, length_width, encoded.n_items)
    if int(lengths.sum()) != n_flat:
        raise CorruptionError(
            f"vector lengths sum to {int(lengths.sum())} but payload claims "
            f"{n_flat} flattened items"
        )
    if n_flat == 0:
        return entries, lengths, np.empty(0, dtype=np.uint64)
    id_view = reader.read_view(reader.remaining)
    if len(id_view) < 1:
        raise CorruptionError("vector id stream missing its width byte")
    ids = unpack_uints(id_view[1:], id_view[0], n_flat)
    if encoded.n_dict_items == 0 or int(ids.max(initial=0)) >= encoded.n_dict_items:
        raise CorruptionError("vector dictionary id out of range")
    return entries, lengths, ids


def _decode_string_vectors(encoded: EncodedColumn) -> list[list[str]]:
    if encoded.n_items == 0:
        return []
    entries, lengths, ids = _parse_string_vectors(encoded)
    flat = [entries[i] for i in ids]
    out: list[list[str]] = []
    cursor = 0
    for length in lengths:
        out.append(flat[cursor : cursor + int(length)])
        cursor += int(length)
    return out


def encode_column(ctype: ColumnType, values: list[ColumnValue]) -> EncodedColumn:
    """Compress one column of ``values`` of type ``ctype``."""
    if ctype is ColumnType.INT64:
        flags, payload = encode_int64_payload(np.asarray(values, dtype=np.int64))
        return EncodedColumn(flags, len(values), 0, b"", payload)
    if ctype is ColumnType.FLOAT64:
        flags, payload = encode_float64_payload(np.asarray(values, dtype=np.float64))
        return EncodedColumn(flags, len(values), 0, b"", payload)
    if ctype is ColumnType.STRING:
        return _encode_strings(values)
    if ctype is ColumnType.STRING_VECTOR:
        return _encode_string_vectors(values)
    raise TypeError(f"unknown column type: {ctype!r}")


def decode_column(ctype: ColumnType, encoded: EncodedColumn) -> list[ColumnValue]:
    """Invert :func:`encode_column`, returning plain Python values."""
    if ctype is ColumnType.INT64:
        return decode_int64_payload(
            encoded.flags, encoded.data, encoded.n_items
        ).tolist()
    if ctype is ColumnType.FLOAT64:
        return decode_float64_payload(
            encoded.flags, encoded.data, encoded.n_items
        ).tolist()
    if ctype is ColumnType.STRING:
        return _decode_strings(encoded)
    if ctype is ColumnType.STRING_VECTOR:
        return _decode_string_vectors(encoded)
    raise TypeError(f"unknown column type: {ctype!r}")


def _factorize_strings(values: list[str]) -> tuple[np.ndarray, list[str]]:
    """Assign first-appearance ids to ``values`` (raw string columns)."""
    codes = np.empty(len(values), dtype=np.int64)
    index: dict[str, int] = {}
    entries: list[str] = []
    for i, value in enumerate(values):
        slot = index.get(value)
        if slot is None:
            slot = len(entries)
            index[value] = slot
            entries.append(value)
        codes[i] = slot
    return codes, entries


def decode_column_arrays(ctype: ColumnType, encoded: EncodedColumn) -> DecodedColumn:
    """Decode one column straight to its array form (no Python rows).

    The vectorized read path: numeric columns stay as the numpy arrays
    their codecs already produce, and string columns keep their id space
    (dictionary-encoded ids verbatim; raw columns factorized here) so
    predicates compare against the dictionary once instead of per row.
    Every array is a fresh heap copy — nothing aliases the encoded
    buffer, so the result may outlive its row block (cache-safe).
    """
    if ctype is ColumnType.INT64:
        return DecodedColumn.numeric(
            decode_int64_payload(encoded.flags, encoded.data, encoded.n_items)
        )
    if ctype is ColumnType.FLOAT64:
        return DecodedColumn.numeric(
            decode_float64_payload(encoded.flags, encoded.data, encoded.n_items)
        )
    if ctype is ColumnType.STRING:
        if CompressionFlags.DICT in encoded.flags:
            entries, ids = _parse_dict_strings(encoded)
            return DecodedColumn.dictionary(ids.astype(np.int64), entries)
        return DecodedColumn.dictionary(*_factorize_strings(_decode_raw_strings(encoded)))
    if ctype is ColumnType.STRING_VECTOR:
        entries, lengths, ids = _parse_string_vectors(encoded)
        offsets = np.zeros(encoded.n_items + 1, dtype=np.int64)
        np.cumsum(lengths.astype(np.int64), out=offsets[1:])
        return DecodedColumn.vector(ids.astype(np.int64), offsets, entries)
    raise TypeError(f"unknown column type: {ctype!r}")


def encoded_size(ctype: ColumnType, values: list[ColumnValue]) -> int:
    """Encoded payload size in bytes — used for compression-ratio benches."""
    return encode_column(ctype, values).payload_size
