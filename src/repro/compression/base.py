"""Shared compression types: the flag word and the encoded-column record.

A row block column stores a 16-bit *compression code* in its header
(paper, Figure 3).  Here that code is a bitmask of the methods that were
applied, so a decoder can mechanically invert the pipeline without any
out-of-band knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntFlag


class CompressionFlags(IntFlag):
    """Methods applied to a column payload, composable as a bitmask.

    ``RAW`` (value 0) means the data section holds the values' natural
    serialization untouched.
    """

    RAW = 0
    DICT = 1  # data holds dictionary ids; dictionary section holds values
    DELTA = 2  # consecutive differences stored instead of absolute values
    ZIGZAG = 4  # signed->unsigned fold so small magnitudes pack small
    BITPACK = 8  # minimal-width dense bit packing
    LZ = 16  # LZ77-style byte compression of the data section
    SHUFFLE = 32  # byte transposition (groups co-varying bytes before LZ)
    DICT_LZ = 64  # LZ applied to the dictionary section


@dataclass(frozen=True)
class EncodedColumn:
    """The output of encoding one column of values.

    The three byte fields map one-to-one onto the row block column layout
    in Figure 3: ``dictionary`` becomes the dictionary section, ``data``
    the data section, and ``flags``/``n_items``/``n_dict_items`` land in
    the header.
    """

    flags: CompressionFlags
    n_items: int
    n_dict_items: int
    dictionary: bytes
    data: bytes

    @property
    def payload_size(self) -> int:
        """Total encoded bytes (dictionary plus data sections)."""
        return len(self.dictionary) + len(self.data)
