"""Float column encoding: byte shuffle plus LZ.

IEEE-754 doubles from a single metric (latencies, revenue counters) share
sign/exponent bytes; transposing the payload so all first bytes come
first, then all second bytes, and so on, turns that redundancy into long
runs the LZ stage can exploit.  This is the same trick Blosc and HDF5's
shuffle filter use, and it satisfies the paper's "at least two methods
per column" for floats (SHUFFLE + LZ).
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressionFlags
from repro.compression.lzs import lz_compress, lz_decompress
from repro.errors import CorruptionError


def shuffle_bytes(raw: bytes, item_size: int = 8) -> bytes:
    """Transpose ``raw`` (n items of ``item_size`` bytes) byte-plane-wise."""
    if len(raw) % item_size:
        raise ValueError(
            f"buffer of {len(raw)} bytes is not a whole number of "
            f"{item_size}-byte items"
        )
    matrix = np.frombuffer(raw, dtype=np.uint8).reshape(-1, item_size)
    return matrix.T.tobytes()


def unshuffle_bytes(shuffled: bytes | memoryview, item_size: int = 8) -> bytes:
    """Invert :func:`shuffle_bytes`."""
    if len(shuffled) % item_size:
        raise CorruptionError(
            f"shuffled buffer of {len(shuffled)} bytes is not a whole "
            f"number of {item_size}-byte items"
        )
    matrix = np.frombuffer(shuffled, dtype=np.uint8).reshape(item_size, -1)
    return matrix.T.tobytes()


def encode_float64_payload(values: np.ndarray) -> tuple[CompressionFlags, bytes]:
    """Encode a float64 array; falls back to RAW when LZ does not pay."""
    values = np.ascontiguousarray(values, dtype=np.float64)
    raw = values.tobytes()
    if not raw:
        return CompressionFlags.RAW, b""
    shuffled = shuffle_bytes(raw)
    compressed = lz_compress(shuffled)
    if len(compressed) < len(raw):
        return CompressionFlags.SHUFFLE | CompressionFlags.LZ, compressed
    return CompressionFlags.RAW, raw


def decode_float64_payload(
    flags: CompressionFlags, payload: bytes | memoryview, n_items: int
) -> np.ndarray:
    """Invert :func:`encode_float64_payload` for ``n_items`` values."""
    if n_items == 0:
        return np.empty(0, dtype=np.float64)
    if CompressionFlags.LZ in flags:
        raw = lz_decompress(payload)
        if CompressionFlags.SHUFFLE in flags:
            raw = unshuffle_bytes(raw)
    elif flags == CompressionFlags.RAW:
        raw = bytes(payload)
    else:
        raise CorruptionError(f"unsupported float64 flag combination: {flags!r}")
    if len(raw) != n_items * 8:
        raise CorruptionError(
            f"float64 payload decodes to {len(raw)} bytes; expected {n_items * 8}"
        )
    return np.frombuffer(raw, dtype=np.float64).copy()
