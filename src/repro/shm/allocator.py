"""The road not taken: a custom allocator *inside* shared memory.

The paper's first design alternative (Section 3) was to allocate all data
in shared memory all the time, which "requires writing a custom allocator
to subdivide shared memory segments" and risks fragmentation because lazy
allocation of backing pages (jemalloc's anti-fragmentation weapon) is not
possible in shared memory.  Scuba rejected it.

This module implements exactly such an allocator — first-fit over an
explicit free list, with immediate neighbour coalescing — *instrumented
for fragmentation*, so experiment E11 can quantify the rejected design:
under a Scuba-like churn of mixed-size row block column allocations, the
largest satisfiable request shrinks even while plenty of total free bytes
remain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AllocationError


@dataclass
class _FreeBlock:
    offset: int
    size: int


@dataclass(frozen=True)
class FragmentationStats:
    """A point-in-time fragmentation picture of the arena."""

    capacity: int
    allocated_bytes: int
    free_bytes: int
    free_block_count: int
    largest_free_block: int

    @property
    def fragmentation(self) -> float:
        """1 - largest_free/total_free: 0 = one hole, →1 = shattered."""
        if self.free_bytes == 0:
            return 0.0
        return 1.0 - self.largest_free_block / self.free_bytes

    @property
    def external_waste(self) -> float:
        """Fraction of free space unusable for a largest-hole request."""
        if self.capacity == 0:
            return 0.0
        return (self.free_bytes - self.largest_free_block) / self.capacity


class ShmAllocator:
    """First-fit allocator over a fixed-size arena with coalescing free.

    Offsets index into an external shared memory segment; the allocator
    only does bookkeeping, which is all the fragmentation study needs.
    Alignment is 8 bytes, matching a typical malloc's minimum.
    """

    ALIGNMENT = 8

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"arena capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._free: list[_FreeBlock] = [_FreeBlock(0, capacity)]
        self._allocated: dict[int, int] = {}  # offset -> size

    @staticmethod
    def _round_up(size: int) -> int:
        mask = ShmAllocator.ALIGNMENT - 1
        return (size + mask) & ~mask

    def alloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns the offset.

        Raises :class:`AllocationError` when no single free block can
        hold the request, even if the *total* free space could — that gap
        is fragmentation, and it is the quantity E11 plots.
        """
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        need = self._round_up(size)
        for index, block in enumerate(self._free):
            if block.size >= need:
                offset = block.offset
                if block.size == need:
                    del self._free[index]
                else:
                    block.offset += need
                    block.size -= need
                self._allocated[offset] = need
                return offset
        raise AllocationError(
            f"no contiguous block of {need} bytes "
            f"(free {self.free_bytes} across {len(self._free)} holes, "
            f"largest {self.largest_free_block})"
        )

    def free(self, offset: int) -> None:
        """Return a block to the free list, coalescing neighbours."""
        size = self._allocated.pop(offset, None)
        if size is None:
            raise AllocationError(f"free of unallocated offset {offset}")
        # Insert in sorted position, then merge with adjacent holes.
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid].offset < offset:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, _FreeBlock(offset, size))
        # Coalesce with successor, then predecessor.
        if lo + 1 < len(self._free):
            nxt = self._free[lo + 1]
            if offset + size == nxt.offset:
                self._free[lo].size += nxt.size
                del self._free[lo + 1]
        if lo > 0:
            prev = self._free[lo - 1]
            if prev.offset + prev.size == offset:
                prev.size += self._free[lo].size
                del self._free[lo]

    @property
    def allocated_bytes(self) -> int:
        return sum(self._allocated.values())

    @property
    def free_bytes(self) -> int:
        return sum(block.size for block in self._free)

    @property
    def largest_free_block(self) -> int:
        return max((block.size for block in self._free), default=0)

    def stats(self) -> FragmentationStats:
        return FragmentationStats(
            capacity=self.capacity,
            allocated_bytes=self.allocated_bytes,
            free_bytes=self.free_bytes,
            free_block_count=len(self._free),
            largest_free_block=self.largest_free_block,
        )
