"""Shared memory substrate (paper, Sections 3 and 4.2).

Shared memory lets a Scuba process communicate with its replacement even
though their lifetimes do not overlap.  This package wraps POSIX shared
memory (via :mod:`multiprocessing.shared_memory`, the Python analogue of
the paper's Boost::Interprocess mmap API) and defines:

- :class:`ShmSegment` — a named segment whose lifetime *we* manage (the
  stdlib resource tracker is told to leave it alone, since outliving the
  creating process is the whole point),
- :class:`LeafMetadata` — the per-leaf metadata block at a fixed,
  derivable name: valid bit, layout version, and the table segment names,
- the contiguous table layout of Figure 4 (:mod:`repro.shm.layout`),
- a first-fit shared-memory allocator (:mod:`repro.shm.allocator`) that
  exists only to measure the fragmentation of the design alternative the
  paper rejected.
"""

from repro.shm.inspect import LeafShmInfo, format_leaf_info, inspect_leaf
from repro.shm.layout import (
    SHM_LAYOUT_VERSION,
    read_table_from_segment,
    table_segment_size,
    write_table_to_segment,
)
from repro.shm.metadata import LeafMetadata, TableSegmentRecord, metadata_segment_name
from repro.shm.segment import ShmSegment, segment_exists

__all__ = [
    "LeafMetadata",
    "LeafShmInfo",
    "format_leaf_info",
    "inspect_leaf",
    "SHM_LAYOUT_VERSION",
    "ShmSegment",
    "TableSegmentRecord",
    "metadata_segment_name",
    "read_table_from_segment",
    "segment_exists",
    "table_segment_size",
    "write_table_to_segment",
]
