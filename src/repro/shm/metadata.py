"""Per-leaf shared memory metadata (paper, Section 4.2 and Figure 4).

"Each leaf has a unique hard coded location in shared memory for its
metadata.  In that location, the leaf stores a valid bit, a layout version
number, and pointers to any shared memory segments it has allocated.
There is one segment per table."

Here the "hard coded location" is a segment whose *name* is a pure
function of the leaf id (and a namespace prefix so concurrent test runs
cannot collide).  Layout of the metadata segment::

    u32 magic        "SLMD"
    u16 meta version (layout of this metadata block itself)
    u16 data layout version (layout of the table segments)
    u8  valid bit    <-- patched in place by set_valid()
    u8[7] reserved
    u64 payload length
    payload: varint table count, then per table:
        str table name
        str segment name
        u64 used bytes (content length inside the segment)
        u64 rows ingested (monotone counter, re-aligns disk sync points)
        u64 rows expired

The valid bit lives at a fixed offset so it can be flipped atomically
(one byte) after all table segments are fully written — the commit point
of the shutdown protocol.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import CorruptionError, LayoutVersionError, ShmError
from repro.shm.segment import ShmSegment, segment_exists
from repro.util.binary import BufferReader, BufferWriter

METADATA_MAGIC = 0x444D4C53  # "SLMD"
METADATA_VERSION = 1
_FIXED = struct.Struct("<IHHB7xQ")
_VALID_OFFSET = 8  # byte offset of the valid bit within the segment

#: Generous fixed size for the metadata segment: it is created once at
#: shutdown and must hold the table list (hundreds of tables fit easily).
METADATA_SEGMENT_SIZE = 1 << 20


def metadata_segment_name(namespace: str, leaf_id: str) -> str:
    """The leaf's unique, derivable metadata location."""
    return f"{namespace}-leaf-{leaf_id}-meta"


@dataclass(frozen=True)
class TableSegmentRecord:
    """One table's entry in the leaf metadata."""

    table_name: str
    segment_name: str
    used_bytes: int
    rows_ingested: int = 0
    rows_expired: int = 0


class LeafMetadata:
    """Read/write access to a leaf's metadata segment."""

    def __init__(self, segment: ShmSegment) -> None:
        self._segment = segment

    # ------------------------------------------------------------------
    # Creation (shutdown path)
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls, namespace: str, leaf_id: str, layout_version: int
    ) -> "LeafMetadata":
        """Create the metadata segment with valid=False and no tables."""
        name = metadata_segment_name(namespace, leaf_id)
        segment = ShmSegment.create(name, METADATA_SEGMENT_SIZE)
        meta = cls(segment)
        meta._write(layout_version, valid=False, records=[])
        return meta

    @classmethod
    def attach(cls, namespace: str, leaf_id: str) -> "LeafMetadata":
        """Attach to an existing metadata segment; raises if absent."""
        return cls(ShmSegment.attach(metadata_segment_name(namespace, leaf_id)))

    @classmethod
    def exists(cls, namespace: str, leaf_id: str) -> bool:
        return segment_exists(metadata_segment_name(namespace, leaf_id))

    # ------------------------------------------------------------------
    # Fields
    # ------------------------------------------------------------------

    def _write(
        self, layout_version: int, valid: bool, records: list[TableSegmentRecord]
    ) -> None:
        writer = BufferWriter()
        writer.write_varint(len(records))
        for record in records:
            writer.write_str(record.table_name)
            writer.write_str(record.segment_name)
            writer.write_u64(record.used_bytes)
            writer.write_u64(record.rows_ingested)
            writer.write_u64(record.rows_expired)
        payload = writer.getvalue()
        fixed = _FIXED.pack(
            METADATA_MAGIC,
            METADATA_VERSION,
            layout_version,
            1 if valid else 0,
            len(payload),
        )
        if len(fixed) + len(payload) > self._segment.size:
            raise ShmError(
                f"leaf metadata of {len(payload)} bytes exceeds the "
                f"{self._segment.size}-byte metadata segment"
            )
        self._segment.write_at(0, fixed)
        self._segment.write_at(len(fixed), payload)

    def _read_fixed(self) -> tuple[int, bool, int]:
        view = self._segment.read_at(0, _FIXED.size)
        magic, meta_version, layout_version, valid, payload_len = _FIXED.unpack(view)
        if magic != METADATA_MAGIC:
            raise CorruptionError(f"bad leaf metadata magic 0x{magic:08x}")
        if meta_version != METADATA_VERSION:
            raise LayoutVersionError(
                f"leaf metadata version {meta_version} not readable by this build"
            )
        return layout_version, bool(valid), payload_len

    @property
    def layout_version(self) -> int:
        return self._read_fixed()[0]

    @property
    def valid(self) -> bool:
        """The valid bit: True only between a completed backup and the
        beginning of the next restore."""
        return self._read_fixed()[1]

    def set_valid(self, valid: bool) -> None:
        """Flip the valid bit in place (single-byte store)."""
        self._segment.write_at(_VALID_OFFSET, bytes([1 if valid else 0]))

    def set_records(self, records: list[TableSegmentRecord]) -> None:
        """Rewrite the table segment list, preserving the current valid
        bit and layout version."""
        layout_version, valid, _ = self._read_fixed()
        self._write(layout_version, valid, records)

    @property
    def records(self) -> list[TableSegmentRecord]:
        _, __, payload_len = self._read_fixed()
        if _FIXED.size + payload_len > self._segment.size:
            raise CorruptionError("leaf metadata payload length out of bounds")
        reader = BufferReader(self._segment.read_at(_FIXED.size, payload_len))
        count = reader.read_varint()
        records = []
        for _ in range(count):
            table_name = reader.read_str()
            segment_name = reader.read_str()
            used = reader.read_u64()
            ingested = reader.read_u64()
            expired = reader.read_u64()
            records.append(
                TableSegmentRecord(table_name, segment_name, used, ingested, expired)
            )
        return records

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        self._segment.close()

    def unlink(self) -> None:
        self._segment.unlink()

    def unlink_all(self) -> None:
        """Unlink every table segment this metadata references, then the
        metadata segment itself (the "delete shared memory segments"
        steps in Figures 6 and 7)."""
        for record in self.records:
            try:
                ShmSegment.attach(record.segment_name).unlink()
            except ShmError:
                pass  # already gone; deletion must be idempotent
        self.unlink()
