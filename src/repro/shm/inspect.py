"""Operator tooling: inspect a leaf's shared memory state.

What an engineer reaches for when a restart did something surprising:
does this leaf have a metadata segment, is the valid bit set, which
layout version wrote it, which table segments does it reference, do
those segments exist and parse, and do their checksums hold?

Everything here is read-only and never flips the valid bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CorruptionError, LayoutVersionError, ShmError
from repro.shm.layout import read_segment_header
from repro.shm.metadata import LeafMetadata, metadata_segment_name
from repro.shm.segment import ShmSegment, segment_exists


@dataclass
class TableSegmentInfo:
    """One table segment as seen from outside."""

    table_name: str
    segment_name: str
    exists: bool
    used_bytes: int = 0
    segment_size: int = 0
    row_blocks: int = 0
    error: str | None = None


@dataclass
class LeafShmInfo:
    """Everything knowable about one leaf's shared memory state."""

    namespace: str
    leaf_id: str
    metadata_exists: bool
    valid: bool | None = None
    layout_version: int | None = None
    tables: list[TableSegmentInfo] = field(default_factory=list)
    error: str | None = None

    @property
    def recoverable(self) -> bool:
        """Would a restore attempt the memory path right now?"""
        return bool(
            self.metadata_exists
            and self.valid
            and all(t.exists and t.error is None for t in self.tables)
        )

    @property
    def total_bytes(self) -> int:
        return sum(t.used_bytes for t in self.tables)


def inspect_leaf(namespace: str, leaf_id: str) -> LeafShmInfo:
    """Non-destructively examine a leaf's shared memory state."""
    info = LeafShmInfo(
        namespace=namespace,
        leaf_id=leaf_id,
        metadata_exists=segment_exists(metadata_segment_name(namespace, leaf_id)),
    )
    if not info.metadata_exists:
        return info
    meta = LeafMetadata.attach(namespace, leaf_id)
    try:
        try:
            info.valid = meta.valid
            info.layout_version = meta.layout_version
            records = meta.records
        except (CorruptionError, LayoutVersionError) as exc:
            info.error = f"{type(exc).__name__}: {exc}"
            return info
        for record in records:
            info.tables.append(_inspect_table_segment(record))
    finally:
        meta.close()
    return info


def _inspect_table_segment(record) -> TableSegmentInfo:
    entry = TableSegmentInfo(
        table_name=record.table_name,
        segment_name=record.segment_name,
        exists=segment_exists(record.segment_name),
        used_bytes=record.used_bytes,
    )
    if not entry.exists:
        entry.error = "segment missing"
        return entry
    try:
        segment = ShmSegment.attach(record.segment_name)
    except ShmError as exc:
        entry.error = str(exc)
        return entry
    try:
        entry.segment_size = segment.size
        view = segment.read_at(0, record.used_bytes)
        try:
            _, pairs = read_segment_header(view)
            entry.row_blocks = len(pairs)
        except (CorruptionError, LayoutVersionError) as exc:
            entry.error = f"{type(exc).__name__}: {exc}"
        finally:
            view.release()
    finally:
        segment.close()
    return entry


def format_leaf_info(info: LeafShmInfo) -> str:
    """Human-readable report."""
    lines = [f"leaf {info.leaf_id} (namespace {info.namespace!r})"]
    if not info.metadata_exists:
        lines.append("  no shared memory state")
        return "\n".join(lines)
    if info.error:
        lines.append(f"  metadata unreadable: {info.error}")
        return "\n".join(lines)
    lines.append(
        f"  valid bit: {'SET' if info.valid else 'clear'}   "
        f"layout version: {info.layout_version}   "
        f"recoverable: {'yes' if info.recoverable else 'no'}"
    )
    for table in info.tables:
        if table.error:
            status = f"ERROR: {table.error}"
        else:
            status = (
                f"{table.row_blocks} row blocks, {table.used_bytes} bytes used "
                f"of {table.segment_size}"
            )
        lines.append(f"  table {table.table_name!r} -> {table.segment_name}: {status}")
    return "\n".join(lines)
