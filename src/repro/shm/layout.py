"""The contiguous table layout inside shared memory (paper, Figure 4).

One shared memory segment per table.  Because the full set of row blocks
and row block columns — and their sizes — is known when the segment is
allocated, row blocks are laid out contiguously, losing one level of
indirection relative to the heap layout::

    u32 magic "STBL"
    u16 layout version
    u16 reserved
    u64 used bytes (content length; the segment may be larger)
    str table name
    varint n row blocks
    u64 block offset  x n   (from segment base)
    u64 block size    x n
    packed row blocks, back to back (RowBlock.pack layout)

Writing is *streamed one row block column at a time* so the shutdown path
can free each heap RBC right after copying it (paper, Section 4.4) — the
:class:`TableSegmentWriter` yields a :class:`CopyEvent` per RBC and the
restart engine interleaves its heap frees with the iteration.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator

from repro.columnstore.rowblock import (
    PACK_HEADER,
    ROWBLOCK_MAGIC,
    ROWBLOCK_VERSION,
    RowBlock,
)
from repro.columnstore.schema import Schema
from repro.errors import CorruptionError, LayoutVersionError, ShmError
from repro.shm.segment import ShmSegment
from repro.util.binary import BufferReader, BufferWriter

#: Version of the shared memory data layout.  Independent of the heap
#: format: bump this only when the bytes written here change shape.
SHM_LAYOUT_VERSION = 1

TABLE_SEGMENT_MAGIC = 0x4C425453  # "STBL"
_SEG_FIXED = struct.Struct("<IHHQ")


def _block_preamble(block: RowBlock) -> tuple[bytes, list[bytes]]:
    """The packed-row-block bytes that precede the RBC payloads.

    Returns ``(preamble, rbc_buffers)`` where the preamble already has
    its header and column offset table patched for a block that starts
    at offset 0; the block is position-independent, so a nonzero start
    needs no fixup (offsets are block-relative... they are absolute
    within the packed block buffer, which itself is addressed by the
    segment's block offset table).
    """
    writer = BufferWriter()
    writer.write_bytes(b"\x00" * PACK_HEADER.size)
    block.schema.serialize(writer)
    names = block.schema.names
    writer.write_varint(len(names))
    offset_slots = [writer.reserve_u64() for _ in names]
    rbcs = [block.rbc_buffer(name) for name in names]
    cursor = writer.offset
    for slot, rbc in zip(offset_slots, rbcs):
        writer.patch_u64(slot, cursor)
        cursor += len(rbc)
    total = cursor
    preamble = bytearray(writer.getvalue())
    PACK_HEADER.pack_into(
        preamble,
        0,
        ROWBLOCK_MAGIC,
        ROWBLOCK_VERSION,
        0,
        total,
        block.row_count,
        block.min_time,
        block.max_time,
        block.created_at,
    )
    return bytes(preamble), rbcs


def packed_block_chunks(block: RowBlock) -> list[bytes]:
    """``block.pack()`` as zero-copy chunks: preamble + raw RBC buffers.

    Concatenating the chunks reproduces the contiguous packed-block
    image byte for byte, so a receiver can hand the joined payload to
    :meth:`RowBlock.unpack`.  The RBC chunks are the block's own encoded
    buffers (``to_encoded(copy=False)``), which is what lets the replica
    wire path serve sealed blocks without re-encoding them.
    """
    preamble, rbcs = _block_preamble(block)
    return [preamble, *rbcs]


def packed_block_size(block: RowBlock) -> int:
    """Exact size of ``block`` in the contiguous layout, without packing."""
    writer = BufferWriter()
    block.schema.serialize(writer)
    schema_bytes = writer.offset
    n = len(block.schema)
    writer2 = BufferWriter()
    writer2.write_varint(n)
    return (
        PACK_HEADER.size
        + schema_bytes
        + writer2.offset
        + 8 * n
        + sum(len(buf) for _, buf in block.rbc_buffers())
    )


def _segment_preamble(table_name: str, blocks: list[RowBlock]) -> tuple[bytes, list[int], list[int]]:
    """Header + offset/size tables; returns (bytes, offsets, sizes)."""
    sizes = [packed_block_size(block) for block in blocks]
    writer = BufferWriter()
    writer.write_bytes(b"\x00" * _SEG_FIXED.size)
    writer.write_str(table_name)
    writer.write_varint(len(blocks))
    offset_slots = [writer.reserve_u64() for _ in blocks]
    size_slots = [writer.reserve_u64() for _ in blocks]
    cursor = writer.offset
    offsets = []
    for slot, size_slot, size in zip(offset_slots, size_slots, sizes):
        writer.patch_u64(slot, cursor)
        writer.patch_u64(size_slot, size)
        offsets.append(cursor)
        cursor += size
    preamble = bytearray(writer.getvalue())
    _SEG_FIXED.pack_into(
        preamble, 0, TABLE_SEGMENT_MAGIC, SHM_LAYOUT_VERSION, 0, cursor
    )
    return bytes(preamble), offsets, sizes


def table_segment_size(table_name: str, blocks: list[RowBlock]) -> int:
    """Exact content size a table segment needs for ``blocks``."""
    preamble, _, sizes = _segment_preamble(table_name, blocks)
    return len(preamble) + sum(sizes)


@dataclass(frozen=True)
class CopyEvent:
    """One row-block-column copy completed by :class:`TableSegmentWriter`."""

    block_index: int
    column_name: str
    nbytes: int
    last_in_block: bool


class TableSegmentWriter:
    """Streams a table into a segment, one RBC ``memcpy`` at a time."""

    def __init__(
        self, segment: ShmSegment, table_name: str, blocks: list[RowBlock]
    ) -> None:
        self._segment = segment
        self._table_name = table_name
        self._blocks = blocks
        self.used_bytes = 0
        self._finished = False

    def write_rbc(self, offset: int, rbc: bytes | bytearray | memoryview) -> int:
        """Bulk-write one row block column straight from its heap buffer.

        One buffer-protocol ``memcpy`` into the segment, no staging copy:
        the source may be the heap ``bytes`` object itself or a
        ``memoryview`` over it.  Returns the offset past the write.
        """
        return self._segment.write_at(offset, rbc)

    def copy_events(self) -> Iterator[CopyEvent]:
        """Write everything; yield after each RBC so the caller can free
        the corresponding heap buffer before the next copy."""
        preamble, offsets, sizes = _segment_preamble(self._table_name, self._blocks)
        self.used_bytes = len(preamble) + sum(sizes)
        if self.used_bytes > self._segment.size:
            raise ShmError(
                f"table '{self._table_name}' needs {self.used_bytes} bytes; "
                f"segment '{self._segment.name}' holds {self._segment.size}"
            )
        self._segment.write_at(0, preamble)
        for index, (block, block_offset) in enumerate(zip(self._blocks, offsets)):
            block_preamble, rbcs = _block_preamble(block)
            cursor = self._segment.write_at(block_offset, block_preamble)
            names = block.schema.names
            for col_index, (name, rbc) in enumerate(zip(names, rbcs)):
                cursor = self.write_rbc(cursor, rbc)
                yield CopyEvent(
                    block_index=index,
                    column_name=name,
                    nbytes=len(rbc),
                    last_in_block=col_index == len(names) - 1,
                )
            if cursor != block_offset + sizes[index]:
                raise ShmError(
                    f"block {index} of table '{self._table_name}' wrote "
                    f"{cursor - block_offset} bytes; expected {sizes[index]}"
                )
        self._finished = True

    def copy_all(self) -> int:
        """Non-streaming convenience: run the whole copy, return used bytes."""
        for _ in self.copy_events():
            pass
        return self.used_bytes


def write_table_to_segment(
    segment: ShmSegment, table_name: str, blocks: list[RowBlock]
) -> int:
    """Copy ``blocks`` into ``segment``; returns the content length."""
    return TableSegmentWriter(segment, table_name, blocks).copy_all()


def read_segment_header(view: memoryview) -> tuple[str, list[tuple[int, int]]]:
    """Parse a table segment's preamble.

    Returns ``(table_name, [(offset, size), ...])``.  Raises
    :class:`LayoutVersionError` if the segment was written by a build with
    a different shared memory layout — the condition that forces disk
    recovery.
    """
    if len(view) < _SEG_FIXED.size:
        raise CorruptionError("table segment smaller than its fixed header")
    magic, version, _, used = _SEG_FIXED.unpack(view[: _SEG_FIXED.size])
    if magic != TABLE_SEGMENT_MAGIC:
        raise CorruptionError(f"bad table segment magic 0x{magic:08x}")
    if version != SHM_LAYOUT_VERSION:
        raise LayoutVersionError(
            f"table segment layout version {version}; this build reads "
            f"{SHM_LAYOUT_VERSION}"
        )
    if used > len(view):
        raise CorruptionError(
            f"table segment claims {used} used bytes; view holds {len(view)}"
        )
    reader = BufferReader(view, offset=_SEG_FIXED.size)
    table_name = reader.read_str()
    n_blocks = reader.read_varint()
    entries = []
    for _ in range(n_blocks):
        entries.append(reader.read_u64())
    sizes = [reader.read_u64() for _ in range(n_blocks)]
    pairs = list(zip(entries, sizes))
    for offset, size in pairs:
        if offset + size > used:
            raise CorruptionError("row block extent outside the segment's used bytes")
    return table_name, pairs


@dataclass(frozen=True)
class BlockExtent:
    """One sealed block's location and header facts inside a segment."""

    offset: int
    size: int
    row_count: int
    min_time: int
    max_time: int
    created_at: float
    columns: tuple[str, ...]


def read_block_headers(view: memoryview) -> tuple[str, list[BlockExtent]]:
    """Parse a segment's preamble plus each block's packed header.

    The cheap directory read of serve-while-restoring: per block only
    the ``PACK_HEADER`` struct and the serialized schema are touched —
    no RBC payload is copied or decoded — so publishing a directory over
    a large segment costs a header scan, not a restore.  Header
    corruption surfaces here, before the leaf starts serving against
    the directory; payload corruption still surfaces at fault-in time
    (``RowBlock.verify``).
    """
    table_name, pairs = read_segment_header(view)
    extents: list[BlockExtent] = []
    for offset, size in pairs:
        region = view[offset : offset + size]
        if len(region) < PACK_HEADER.size:
            raise CorruptionError("row block extent smaller than its header")
        magic, version, _, total, row_count, min_time, max_time, created_at = (
            PACK_HEADER.unpack(region[: PACK_HEADER.size])
        )
        if magic != ROWBLOCK_MAGIC:
            raise CorruptionError(f"bad row block magic 0x{magic:08x}")
        if version != ROWBLOCK_VERSION:
            raise LayoutVersionError(
                f"row block version {version}; this build reads "
                f"{ROWBLOCK_VERSION}"
            )
        if total != size:
            raise CorruptionError(
                f"row block header claims {total} bytes; the segment's "
                f"offset table says {size}"
            )
        reader = BufferReader(region, offset=PACK_HEADER.size)
        schema = Schema.deserialize(reader)
        extents.append(
            BlockExtent(
                offset=offset,
                size=size,
                row_count=row_count,
                min_time=min_time,
                max_time=max_time,
                created_at=created_at,
                columns=tuple(schema.names),
            )
        )
    return table_name, extents


def iter_blocks_from_segment(
    view: memoryview, copy: bool = True
) -> Iterator[tuple[str, RowBlock]]:
    """Yield ``(table_name, row_block)`` pairs (the restore direction).

    Each block is materialized by ``RowBlock.unpack``'s fast path: the
    block region is sliced as a ``memoryview`` (no copy) and every RBC
    leaves the segment with exactly one bulk ``bytes()``.  With
    ``copy=False`` even that copy is skipped and the blocks *attach* to
    the segment — valid only while ``view`` stays alive, and the views
    must be dropped before the segment can be closed or unlinked.
    """
    table_name, pairs = read_segment_header(view)
    for offset, size in pairs:
        yield table_name, RowBlock.unpack(view[offset : offset + size], copy=copy)


def read_table_from_segment(
    segment: ShmSegment, used_bytes: int | None = None
) -> tuple[str, list[RowBlock]]:
    """Read a whole table segment back into heap row blocks."""
    view = segment.buf if used_bytes is None else segment.read_at(0, used_bytes)
    try:
        blocks = []
        table_name = ""
        for table_name, block in iter_blocks_from_segment(view):
            blocks.append(block)
        if not blocks:
            table_name = read_segment_header(view)[0]
        return table_name, blocks
    finally:
        view.release()
