"""Named shared memory segments with explicitly-managed lifetimes.

``multiprocessing.shared_memory.SharedMemory`` registers every created
segment with the stdlib resource tracker, which *unlinks it when the
creating process exits* — precisely the behaviour a restart-persistence
mechanism must avoid.  :class:`ShmSegment` unregisters from the tracker
at creation, making segment lifetime a deliberate responsibility of the
restart engine (create at shutdown, unlink after a successful restore or
a failed validity check), exactly as in the paper.
"""

from __future__ import annotations

from multiprocessing import resource_tracker, shared_memory

from repro.errors import ShmError


def _untrack(name: str) -> None:
    """Tell the resource tracker to forget a segment we manage ourselves."""
    try:
        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary by version
        pass


def _retrack(name: str) -> None:
    """Re-register a segment right before unlinking it.

    ``SharedMemory.unlink`` unregisters from the resource tracker; since
    creation unregistered already, the pair must be balanced or the
    tracker daemon logs spurious KeyErrors.
    """
    try:
        resource_tracker.register(f"/{name}", "shared_memory")
    except Exception:  # pragma: no cover
        pass


def segment_exists(name: str) -> bool:
    """Whether a shared memory segment with ``name`` currently exists."""
    try:
        segment = shared_memory.SharedMemory(name=name, create=False)
    except FileNotFoundError:
        return False
    _untrack(name)
    segment.close()
    return True


class ShmSegment:
    """A named POSIX shared memory segment.

    Use :meth:`create` from the shutting-down process and :meth:`attach`
    from its replacement.  ``close`` drops this process's mapping;
    ``unlink`` removes the segment from the system.  The segment survives
    process exit until someone unlinks it.
    """

    def __init__(self, raw: shared_memory.SharedMemory, created: bool) -> None:
        self._raw = raw
        self._created = created
        self._closed = False

    @classmethod
    def create(cls, name: str, size: int) -> "ShmSegment":
        if size <= 0:
            raise ShmError(f"segment size must be positive, got {size}")
        try:
            raw = shared_memory.SharedMemory(name=name, create=True, size=size)
        except FileExistsError as exc:
            raise ShmError(f"shared memory segment '{name}' already exists") from exc
        except OSError as exc:
            raise ShmError(f"cannot create segment '{name}' of {size} bytes: {exc}") from exc
        _untrack(raw.name)
        return cls(raw, created=True)

    @classmethod
    def attach(cls, name: str) -> "ShmSegment":
        try:
            raw = shared_memory.SharedMemory(name=name, create=False)
        except FileNotFoundError as exc:
            raise ShmError(f"no shared memory segment named '{name}'") from exc
        _untrack(raw.name)
        return cls(raw, created=False)

    @property
    def name(self) -> str:
        return self._raw.name

    @property
    def size(self) -> int:
        return self._raw.size

    @property
    def buf(self) -> memoryview:
        if self._closed:
            raise ShmError(f"segment '{self.name}' is closed in this process")
        return self._raw.buf

    def write_at(self, offset: int, data: bytes | bytearray | memoryview) -> int:
        """Copy ``data`` into the segment; returns the offset past it.

        This is the library's ``memcpy``: one call moves one row block
        column.
        """
        end = offset + len(data)
        if offset < 0 or end > self.size:
            raise ShmError(
                f"write of {len(data)} bytes at {offset} overruns segment "
                f"'{self.name}' of {self.size} bytes"
            )
        self.buf[offset:end] = data
        return end

    def read_at(self, offset: int, length: int) -> memoryview:
        """A zero-copy view of ``length`` bytes at ``offset``."""
        if offset < 0 or length < 0 or offset + length > self.size:
            raise ShmError(
                f"read of {length} bytes at {offset} overruns segment "
                f"'{self.name}' of {self.size} bytes"
            )
        return self.buf[offset : offset + length]

    def close(self) -> None:
        """Unmap from this process (the segment itself lives on)."""
        if not self._closed:
            self._raw.close()
            self._closed = True

    def unlink(self) -> None:
        """Remove the segment from the system."""
        self.close()
        _retrack(self._raw.name)
        try:
            self._raw.unlink()
        except FileNotFoundError:
            _untrack(self._raw.name)

    def __enter__(self) -> "ShmSegment":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"ShmSegment(name={self.name!r}, size={self.size}, {state})"
