"""repro — a reproduction of *Fast Database Restarts at Facebook*
(Goel et al., SIGMOD 2014).

A Scuba-like distributed in-memory column store whose leaf servers can
restart through POSIX shared memory: a cleanly shutting-down process
copies its compressed column data into named shared memory segments, one
row block column at a time, sets a valid bit, and exits; the replacement
process attaches, copies everything back into its heap, and is serving
complete results in seconds — instead of re-reading and re-translating
its entire backup from disk.

Quick tour::

    from repro import LeafServer, DiskBackup, Query, Aggregation

    leaf = LeafServer("0", backup=DiskBackup("/tmp/scuba-backup"))
    leaf.start()                       # empty first boot
    leaf.add_rows("events", rows)      # ingest
    leaf.shutdown(use_shm=True)        # copy heap -> shared memory, exit

    leaf2 = LeafServer("0", backup=DiskBackup("/tmp/scuba-backup"))
    leaf2.start()                      # shared memory -> heap, seconds
    leaf2.query(Query("events", aggregations=(Aggregation("count"),)))

Layering (see DESIGN.md):

- :mod:`repro.columnstore` — tables, row blocks, row block columns
- :mod:`repro.compression` — dictionary / delta / bitpack / LZ codecs
- :mod:`repro.shm` — segments, leaf metadata, the Figure-4 layout
- :mod:`repro.disk` — the legacy row-format backup and its recovery
- :mod:`repro.core` — the restart engine (the paper's contribution)
- :mod:`repro.server`, :mod:`repro.ingest`, :mod:`repro.query` — the
  distributed database around it
- :mod:`repro.cluster` — rolling upgrades and the Figure-8 dashboard
- :mod:`repro.sim` — full-scale timings from a calibrated cost model
- :mod:`repro.workloads` — synthetic monitoring workloads
"""

from repro.cluster import (
    CanaryDeployment,
    Cluster,
    Dashboard,
    ProcessDeployment,
    RolloverCoordinator,
    RolloverMonitor,
    render_dashboard,
)
from repro.columnstore import LeafMap, RowBlock, RowBlockColumn, Schema, Table
from repro.core import CooperativeDeadline, RecoveryMethod, RestartEngine, RestartReport
from repro.disk import DiskBackup
from repro.errors import ReproError
from repro.ingest import ScribeLog, Tailer
from repro.query import Aggregation, Filter, Query, QueryResult
from repro.server import (
    Aggregator,
    LeafProcess,
    LeafServer,
    LeafStatus,
    Machine,
    RetentionEnforcer,
    RetentionPolicy,
)
from repro.shm import LeafMetadata, ShmSegment
from repro.sim import HardwareProfile, paper_profile, simulate_rollover
from repro.types import TIME_COLUMN, ColumnType
from repro.util.clock import ManualClock, SystemClock
from repro.util.memtrack import MemoryTracker

__version__ = "1.0.0"

__all__ = [
    "Aggregation",
    "CanaryDeployment",
    "Aggregator",
    "Cluster",
    "ColumnType",
    "CooperativeDeadline",
    "Dashboard",
    "DiskBackup",
    "Filter",
    "HardwareProfile",
    "LeafMap",
    "LeafMetadata",
    "LeafServer",
    "LeafStatus",
    "LeafProcess",
    "Machine",
    "ManualClock",
    "ProcessDeployment",
    "MemoryTracker",
    "Query",
    "QueryResult",
    "RecoveryMethod",
    "ReproError",
    "RestartEngine",
    "RestartReport",
    "RetentionEnforcer",
    "RetentionPolicy",
    "RolloverCoordinator",
    "RolloverMonitor",
    "RowBlock",
    "RowBlockColumn",
    "Schema",
    "ScribeLog",
    "ShmSegment",
    "SystemClock",
    "TIME_COLUMN",
    "Table",
    "Tailer",
    "paper_profile",
    "render_dashboard",
    "simulate_rollover",
    "__version__",
]
